#include "core/simulation.hpp"

#include "core/alloc_pool.hpp"
#include "core/predict_phase.hpp"

#include <algorithm>
#include <cassert>
#include <climits>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "util/shard_team.hpp"

namespace mmog::core {
namespace {

constexpr std::uint8_t kNotACandidate = 0xFF;

/// One predicted sub-stream: a server group's player counts plus its online
/// predictor (§IV-B: prediction happens per sub-zone; the region estimate is
/// the sum of the per-zone predictions).
struct GroupStream {
  const util::TimeSeries* players = nullptr;
  std::unique_ptr<predict::Predictor> predictor;
  double last_prediction = 0.0;
  double abs_error_ewma = 0.0;  ///< recent one-step |error| of the predictor
};

/// The unit at which a game operator requests resources: one game in one
/// geographic region (§II-C: operators submit aggregate requests to data
/// centers; §V-E routes them by the region's location).
struct DemandUnit {
  std::size_t game_id = 0;
  std::string region_name;
  std::vector<GroupStream> groups;
  /// Live allocations, as an insertion-ordered list of AllocPool slots
  /// (the data-oriented replacement for the historical per-unit
  /// std::vector<dc::Allocation>).
  AllocPool::List allocs;
  /// Invariant: always the exact in-insertion-order sum of the live
  /// allocations' amounts (see AllocPool::sum_amounts) — the conservation
  /// property the release paths re-establish after every removal.
  util::ResourceVector allocated{};
  std::vector<std::size_t> candidates;  ///< matcher-ordered DC indices
  /// Healthy distance class per data center (kNotACandidate when the
  /// center is outside the game's latency tolerance); latency-degradation
  /// faults worsen the effective class against `tolerance`.
  std::vector<std::uint8_t> base_class_by_dc;
  dc::DistanceClass tolerance = dc::DistanceClass::kVeryFar;
  /// Retry bookkeeping for the resilience policy (unused when disabled).
  fault::BackoffTracker backoff;
  int priority = 0;
};

/// Candidate-filter statuses precomputed for the match phase. Only the
/// outage and latency-degradation verdicts live here: both are pure
/// functions of (data center, step) through the immutable fault schedule,
/// so workers can evaluate them in parallel with no ordering effects.
/// Backoff is deliberately absent — shedding mutates *other* units'
/// trackers mid-phase, so that check stays in the serial commit.
constexpr std::uint8_t kCandViable = 0;
constexpr std::uint8_t kCandOutage = 1;
constexpr std::uint8_t kCandLatency = 2;

struct CandidateFilterCtx {
  const std::vector<DemandUnit>* units;
  const fault::FaultSchedule* schedule;
  const std::vector<std::size_t>* offsets;  ///< per-unit start into statuses
  std::vector<std::uint8_t>* statuses;
  std::size_t step;
};

// mmog-lint: hot-begin(match-filter)
void candidate_filter_shard(void* opaque, std::size_t shard,
                            std::size_t shards) {
  auto& ctx = *static_cast<CandidateFilterCtx*>(opaque);
  const auto& units = *ctx.units;
  const std::size_t chunk = (units.size() + shards - 1) / shards;
  const std::size_t begin = std::min(units.size(), shard * chunk);
  const std::size_t end = std::min(units.size(), begin + chunk);
  for (std::size_t u = begin; u < end; ++u) {
    const DemandUnit& unit = units[u];
    std::uint8_t* status = ctx.statuses->data() + (*ctx.offsets)[u];
    for (std::size_t ci = 0; ci < unit.candidates.size(); ++ci) {
      const std::size_t d = unit.candidates[ci];
      std::uint8_t s = kCandViable;
      if (ctx.schedule->outage_at(d, ctx.step)) {
        s = kCandOutage;
      } else {
        const std::size_t penalty =
            ctx.schedule->latency_penalty_at(d, ctx.step);
        if (penalty != 0) {
          const std::uint8_t base = unit.base_class_by_dc[d];
          if (base == kNotACandidate ||
              base + penalty > static_cast<std::size_t>(unit.tolerance)) {
            s = kCandLatency;
          }
        }
      }
      status[ci] = s;
    }
  }
}

/// One server group's slice of the pad phase: inputs (prediction stream,
/// load model) are fixed at setup; the per-step parallel pass rewrites only
/// the output fields of its own shard's slots, and the serial reduction
/// reads them back in fixed group order — the same add sequence as the
/// historical serial loop, hence bit-identical at any thread count.
struct PadSlot {
  const GroupStream* stream = nullptr;
  const LoadModel* load = nullptr;
  util::ResourceVector demand{};  ///< load demand of the padded prediction
  util::ResourceVector raw{};     ///< load demand of the raw prediction
};

struct PadCtx {
  PadSlot* slots;
  std::size_t count;
  double safety_factor;
  bool want_raw;  ///< raw demand is only consumed by the audit margin
};

void pad_shard(void* opaque, std::size_t shard, std::size_t shards) {
  auto& ctx = *static_cast<PadCtx*>(opaque);
  const std::size_t chunk = (ctx.count + shards - 1) / shards;
  const std::size_t begin = std::min(ctx.count, shard * chunk);
  const std::size_t end = std::min(ctx.count, begin + chunk);
  for (std::size_t i = begin; i < end; ++i) {
    PadSlot& slot = ctx.slots[i];
    const double padded = slot.stream->last_prediction +
                          ctx.safety_factor * slot.stream->abs_error_ewma;
    slot.demand = slot.load->demand(padded);
    if (ctx.want_raw) slot.raw = slot.load->demand(slot.stream->last_prediction);
  }
}
// mmog-lint: hot-end

/// Up-front configuration validation: every inconsistency fails loudly
/// here instead of silently no-opting deep in the run.
void validate_config(const SimulationConfig& config) {
  if (config.games.empty()) {
    throw std::invalid_argument("simulate: no games configured");
  }
  if (config.mode == AllocationMode::kDynamic && !config.predictor) {
    throw std::invalid_argument("simulate: dynamic mode needs a predictor");
  }
  if (config.datacenters.empty()) {
    throw std::invalid_argument("simulate: no data centers configured");
  }
  const std::size_t n_dcs = config.datacenters.size();
  for (const auto& outage : config.outages) {
    if (outage.dc_index >= n_dcs) {
      throw std::invalid_argument(
          "simulate: outage dc_index " + std::to_string(outage.dc_index) +
          " out of range (have " + std::to_string(n_dcs) +
          " data centers)");
    }
    if (outage.from_step >= outage.to_step) {
      throw std::invalid_argument(
          "simulate: outage window must satisfy from_step < to_step (got [" +
          std::to_string(outage.from_step) + ", " +
          std::to_string(outage.to_step) + "))");
    }
  }
  for (const auto& spec : config.faults) fault::validate(spec, n_dcs);
  if (!(config.safety_factor >= 0.0)) {
    throw std::invalid_argument("simulate: safety_factor must be >= 0");
  }
  if (!(config.event_threshold_pct >= 0.0)) {
    throw std::invalid_argument("simulate: event_threshold_pct must be >= 0");
  }
  if (config.resilience.standby_reserve_servers < 0.0) {
    throw std::invalid_argument(
        "simulate: standby_reserve_servers must be >= 0");
  }
}

}  // namespace

util::ResourceVector offer_amount(const util::ResourceVector& need,
                                  const util::ResourceVector& free,
                                  const dc::HostingPolicy& policy) noexcept {
  util::ResourceVector out{};
  if (policy.has_bundles()) {
    const std::size_t k = std::min(policy.bundles_needed(need),
                                   policy.bundles_fitting(free));
    out = policy.bundle_amount(k);
  }
  for (std::size_t i = 0; i < util::kResourceKinds; ++i) {
    if (policy.bulk.v[i] > 0.0) continue;  // covered by bundles
    out.v[i] = std::min(std::max(0.0, need.v[i]), std::max(0.0, free.v[i]));
  }
  return out;
}

SimulationResult simulate(const SimulationConfig& config) {
  validate_config(config);

  obs::Recorder* const rec = config.recorder;
  obs::AuditTrail* const audit = rec ? rec->audit() : nullptr;
  const auto& res_policy = config.resilience;
  const bool resilient = res_policy.enabled;

  const Matcher matcher(config.datacenters);
  std::vector<dc::DataCenterLedger> ledgers;
  ledgers.reserve(config.datacenters.size());
  for (const auto& spec : config.datacenters) ledgers.emplace_back(spec);

  // Build one demand unit per (game, region) and resolve each unit's
  // candidate data centers (matching criteria of §II-C).
  std::vector<DemandUnit> units;
  std::size_t total_groups = 0;
  std::size_t horizon = std::numeric_limits<std::size_t>::max();
  for (std::size_t g = 0; g < config.games.size(); ++g) {
    const auto& game = config.games[g];
    for (const auto& region : game.workload.regions) {
      if (region.groups.empty()) continue;
      const auto site = dc::region_site(region.name);
      DemandUnit unit;
      unit.game_id = g;
      unit.region_name = region.name;
      unit.candidates =
          matcher.candidates(site.location, game.latency_tolerance);
      unit.tolerance = game.latency_tolerance;
      unit.base_class_by_dc.assign(config.datacenters.size(), kNotACandidate);
      for (const std::size_t cand : unit.candidates) {
        unit.base_class_by_dc[cand] = static_cast<std::uint8_t>(
            dc::classify_distance(matcher.distance_km(site.location, cand)));
      }
      unit.backoff = fault::BackoffTracker(res_policy.base_backoff_steps,
                                           res_policy.max_backoff_steps);
      if (rec) {
        // Matching criterion 2 (§II-C, geographic proximity): centers
        // outside the game's latency tolerance are rejected up front, once
        // per (game, region) request stream.
        rec->count("offer.rejected.latency",
                   static_cast<double>(config.datacenters.size() -
                                       unit.candidates.size()));
      }
      unit.priority = game.priority;
      for (const auto& sg : region.groups) {
        GroupStream stream;
        stream.players = &sg.players;
        if (config.mode == AllocationMode::kDynamic) {
          stream.predictor = config.predictor();
        }
        horizon = std::min(horizon, sg.players.size());
        unit.groups.push_back(std::move(stream));
        ++total_groups;
      }
      units.push_back(std::move(unit));
    }
  }
  if (units.empty() || horizon == 0 ||
      horizon == std::numeric_limits<std::size_t>::max()) {
    throw std::invalid_argument("simulate: empty workload");
  }
  const std::size_t steps =
      config.steps == 0 ? horizon : std::min(config.steps, horizon);

  // Expand the fault processes over the run's horizon; the legacy outage
  // windows fold into the same schedule. Empty schedule = the exact
  // fault-free behavior this simulator always had.
  std::vector<fault::FaultEvent> fixed_events;
  fixed_events.reserve(config.outages.size());
  for (const auto& outage : config.outages) {
    fixed_events.push_back({fault::FaultKind::kOutage, outage.dc_index,
                            outage.from_step, outage.to_step, 1.0});
  }
  const auto schedule =
      fault::FaultSchedule::generate(config.faults, config.datacenters.size(),
                                     steps, std::move(fixed_events));
  const bool have_faults = !schedule.empty();

  // The shared allocation arena, sized so every unit's warm state fits
  // without slab growth (the same 4-allocations-per-candidate warm start
  // the per-unit vectors used to reserve).
  std::size_t pool_hint = 0;
  for (const auto& unit : units) pool_hint += unit.candidates.size() * 4;
  AllocPool alloc_pool(pool_hint);

  // Flat per-(unit, candidate-position) viability statuses for the match
  // phase, written by the parallel candidate filter and read by the serial
  // commit. Only needed when faults can reject candidates at all.
  std::vector<std::size_t> cand_offset(units.size() + 1, 0);
  for (std::size_t u = 0; u < units.size(); ++u) {
    cand_offset[u + 1] = cand_offset[u] + units[u].candidates.size();
  }
  std::vector<std::uint8_t> cand_status;
  if (have_faults && config.mode == AllocationMode::kDynamic) {
    cand_status.resize(cand_offset.back(), kCandViable);
  }

  if (rec) {
    rec->gauge("sim.steps", static_cast<double>(steps));
    rec->gauge("sim.units", static_cast<double>(units.size()));
    rec->gauge("sim.groups", static_cast<double>(total_groups));
    rec->gauge("sim.datacenters",
               static_cast<double>(config.datacenters.size()));
    if (have_faults) {
      rec->gauge("fault.windows",
                 static_cast<double>(schedule.events().size()));
    }
  }

  // Service order: stable by priority when the extension is enabled,
  // otherwise first-come (flattening order).
  std::vector<std::size_t> order(units.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (config.prioritize_by_interaction) {
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return units[a].priority > units[b].priority;
                     });
  }

  // Predict-phase scheduler: a flat, service-ordered view of every group
  // stream, sharded contiguously across `config.threads` workers. Each
  // worker writes only its own slots' `last_prediction`; the pad phase
  // below reduces them serially in fixed index order, so any thread count
  // reproduces the serial run bit for bit. Pointers stay valid because
  // `units` and each `unit.groups` are fully built above and never resized
  // again.
  ParallelPredictor predict_runner(
      config.mode == AllocationMode::kDynamic ? config.threads : 1);
  std::vector<PredictSlot> predict_slots;
  if (config.mode == AllocationMode::kDynamic) {
    predict_slots.reserve(total_groups);
    for (const std::size_t idx : order) {
      for (auto& stream : units[idx].groups) {
        predict_slots.push_back(
            {stream.predictor.get(), &stream.last_prediction});
      }
    }
  }
  // Pad-phase scheduler: the same flat service-ordered view, one slot per
  // group stream. Workers fill only the output fields of their own shard's
  // slots; the serial per-unit reduction below reads them in fixed group
  // order, so padding too is bit-identical at any thread count.
  std::vector<PadSlot> pad_slots;
  if (config.mode == AllocationMode::kDynamic) {
    pad_slots.reserve(total_groups);
    for (const std::size_t idx : order) {
      const auto& load = config.games[units[idx].game_id].load;
      for (auto& stream : units[idx].groups) {
        PadSlot slot;
        slot.stream = &stream;
        slot.load = &load;
        pad_slots.push_back(slot);
      }
    }
  }
  // One persistent worker team serves every sharded phase (predict, pad,
  // match filter); nullptr means threads == 1 and the shards run inline.
  util::ShardTeam* const team = predict_runner.team();
  if (rec) {
    rec->gauge("sim.predict_threads",
               static_cast<double>(predict_runner.threads()));
  }

  // Resource profiler (PR 8): throughput and RSS sampled once per step.
  // Observational only — attached or not, outcomes are byte-identical.
  obs::ResourceProfiler* const profiler = rec ? rec->profiler() : nullptr;
  if (profiler) {
    profiler->begin_run(static_cast<std::uint64_t>(total_groups));
  }

  std::size_t next_allocation_id = 1;
  SimulationResult result;
  result.steps = steps;
  result.fault_events = schedule.events();

  // Per-DC usage accumulators.
  std::vector<double> dc_cpu_sum(ledgers.size(), 0.0);
  std::vector<double> dc_cpu_peak(ledgers.size(), 0.0);
  std::vector<std::map<std::string, double>> dc_origin_sum(ledgers.size());

  // SLA accounting: one tracker per game plus the global signal; per-step
  // shed flags mark games deliberately degraded by the resilience policy.
  SlaTracker overall_sla;
  std::vector<SlaTracker> game_sla(config.games.size());
  std::vector<char> game_shed(config.games.size(), 0);

  // A latency-degradation fault pushes the center's effective distance
  // class beyond the unit's tolerance: no new grants, and hosted servers
  // must migrate away.
  auto latency_violated = [&](const DemandUnit& unit, std::size_t d,
                              std::size_t step) {
    if (!have_faults) return false;
    const std::size_t penalty = schedule.latency_penalty_at(d, step);
    if (penalty == 0) return false;
    const std::uint8_t base = unit.base_class_by_dc[d];
    if (base == kNotACandidate) return true;
    return base + penalty > static_cast<std::size_t>(unit.tolerance);
  };

  // Decision-audit scratch (only touched when the recorder has an audit
  // trail attached): the step's records in occurrence order. Actual player
  // counts are backfilled per unit once the step's load materializes in the
  // account phase, then the batch is flushed to the trail in one lock
  // acquisition. Everything runs on the simulation thread, so trails are
  // byte-identical at any `config.threads` value.
  std::vector<obs::AuditRecord> audit_batch;
  std::vector<std::vector<std::size_t>> audit_backfill(units.size());
  std::vector<double> audit_predicted(units.size(), 0.0);
  std::vector<double> audit_margin(units.size(), 0.0);
  if (audit) audit_batch.reserve(units.size() * 2);

  // `ar` collects one AuditOffer per visited candidate (nullptr = audit
  // off: the walk pays one pointer test per branch). `filter`, when given,
  // is the unit's precomputed outage/latency statuses (one per candidate
  // position, from candidate_filter_shard); nullptr re-evaluates them
  // inline — both paths compute the same pure predicates.
  // mmog-lint: hot-begin(allocate)
  auto try_allocate = [&](DemandUnit& unit, const util::ResourceVector& need_in,
                          std::size_t step, std::size_t hold_steps,
                          obs::AuditRecord* ar, const std::uint8_t* filter) {
    util::ResourceVector need = need_in.clamped_non_negative();
    if (ar) ar->offers.reserve(unit.candidates.size());
    for (std::size_t ci = 0; ci < unit.candidates.size(); ++ci) {
      const std::size_t cand = unit.candidates[ci];
      // Satisfied: stop the walk before touching another candidate. This
      // check used to sit *after* the rejection branches, so a request
      // whose need was already met kept visiting the remaining candidates
      // and inflated the offer.rejected.* counters and audit offer walks
      // with phantom rejections.
      double outstanding = 0.0;
      for (double v : need.v) outstanding += v;
      if (outstanding <= 1e-9) break;
      const auto dc32 = static_cast<std::uint32_t>(cand);
      bool outage;
      bool latency;
      if (filter != nullptr) {
        outage = filter[ci] == kCandOutage;
        latency = filter[ci] == kCandLatency;
      } else {
        outage = have_faults && schedule.outage_at(cand, step);
        latency = !outage && have_faults && latency_violated(unit, cand, step);
      }
      if (outage) {
        if (rec) rec->count("offer.rejected.outage");
        if (ar) {
          ar->offers.push_back(
              {dc32, obs::OfferOutcome::kRejectedOutage, 0.0, 0});
        }
        continue;
      }
      if (latency) {
        // Matching criterion 2 re-evaluated under degradation: the center
        // is temporarily too far for this game.
        if (rec) rec->count("offer.rejected.latency_degraded");
        if (ar) {
          ar->offers.push_back(
              {dc32, obs::OfferOutcome::kRejectedLatencyDegraded, 0.0, 0});
        }
        continue;
      }
      if (resilient && unit.backoff.excluded(cand, step)) {
        if (rec) rec->count("offer.rejected.backoff");
        if (ar) {
          ar->offers.push_back({dc32, obs::OfferOutcome::kRejectedBackoff,
                                0.0, unit.backoff.excluded_until(cand)});
        }
        continue;
      }
      auto& ledger = ledgers[cand];
      const auto& policy = ledger.spec().policy;
      const auto amount = offer_amount(need, ledger.free(), policy);
      // CPU drives placement: when CPU is needed, a grant without CPU only
      // wastes bandwidth; and an empty offer is no offer.
      if (need.cpu() > 1e-9 && amount.cpu() <= 1e-9) {
        // Matching criterion 3 (§II-C, offer granularity): the policy's CPU
        // bulk cannot produce a usable offer from this center's free pool.
        if (rec) rec->count("offer.rejected.bulk");
        if (ar) {
          ar->offers.push_back(
              {dc32, obs::OfferOutcome::kRejectedBulk, 0.0, 0});
        }
        continue;
      }
      double total = 0.0;
      for (double v : amount.v) total += v;
      if (total <= 1e-9) {
        if (rec) rec->count("offer.rejected.amount");
        if (ar) {
          ar->offers.push_back(
              {dc32, obs::OfferOutcome::kRejectedAmount, 0.0, 0});
        }
        continue;
      }
      if (have_faults && schedule.flap_at(cand, step)) {
        // Transient grant failure: the offer was accepted but the rented
        // resources never materialize. The request retries elsewhere.
        if (rec) rec->count("alloc.grant_failed.transient");
        std::size_t until = 0;
        if (resilient) until = unit.backoff.record_failure(cand, step);
        if (ar) {
          ar->offers.push_back(
              {dc32, obs::OfferOutcome::kGrantFlapped, 0.0, until});
        }
        continue;
      }
      if (!ledger.grant(amount)) {
        // Matching criterion 1 (§II-C, amount fit): nothing left to offer.
        if (rec) rec->count("offer.rejected.amount");
        if (ar) {
          ar->offers.push_back(
              {dc32, obs::OfferOutcome::kRejectedAmount, 0.0, 0});
        }
        continue;
      }
      dc::Allocation alloc;
      alloc.id = next_allocation_id++;
      alloc.dc_index = cand;
      alloc.game_id = unit.game_id;
      alloc.amount = amount;
      alloc.start_step = step;
      alloc.usable_step = step + config.provisioning_delay_steps;
      alloc.earliest_release_step =
          hold_steps == std::numeric_limits<std::size_t>::max()
              ? hold_steps
              : step + std::max<std::size_t>(hold_steps,
                                             policy.time_bulk_steps());
      alloc_pool.acquire(unit.allocs, alloc);
      // Appending at the tail extends the in-order conservation sum by one
      // term, so += keeps `allocated` exactly Σ amounts.
      unit.allocated += amount;
      need = (need - amount).clamped_non_negative();
      if (resilient) unit.backoff.record_success(cand);
      if (ar) {
        ar->offers.push_back(
            {dc32, obs::OfferOutcome::kGranted, amount.cpu(), 0});
        if (ar->dc == obs::kAuditNoDc) {
          ar->dc = static_cast<std::int32_t>(cand);
        }
        ar->granted_cpu += amount.cpu();
      }
      if (rec) {
        rec->count("offer.matched");
        rec->count("alloc.granted");
        // Guarded so the arg strings are only built when a tracer consumes
        // them; instant() would drop them unseen below kSteps level.
        if (rec->tracing()) {
          rec->instant("alloc.granted", "alloc", step,
                       {{"dc", ledger.spec().name},
                        {"region", unit.region_name},
                        {"cpu", std::to_string(amount.cpu())},   // mmog-lint: allow(hot-string)
                        {"id", std::to_string(alloc.id)}});      // mmog-lint: allow(hot-string)
        }
      }
    }
    return need;  // unmet demand
  };

  // Force-releases one allocation (fault eviction or shedding), returning
  // its resources to the ledger and recording why.
  auto force_release = [&](std::size_t unit_index, AllocPool::Index slot,
                           std::size_t step, const char* reason) {
    DemandUnit& unit = units[unit_index];
    const auto amount = alloc_pool.amount(slot);
    const std::size_t alloc_dc = alloc_pool.dc_index(slot);
    const std::size_t alloc_id = alloc_pool.id(slot);
    ledgers[alloc_dc].release(amount);
    if (audit) {
      obs::AuditRecord ar;
      ar.step = step;
      ar.kind = obs::AuditKind::kForceRelease;
      ar.game = static_cast<std::uint32_t>(unit.game_id);
      ar.region = unit.region_name;
      ar.held_cpu = unit.allocated.cpu();
      ar.released_cpu = amount.cpu();
      ar.dc = static_cast<std::int32_t>(alloc_dc);
      ar.cause = reason;
      ar.alloc_id = alloc_id;
      audit_batch.push_back(std::move(ar));
    }
    if (rec) {
      rec->count("alloc.force_released");
      if (rec->tracing()) {
        rec->instant("alloc.force_released", "alloc", step,
                     {{"dc", ledgers[alloc_dc].spec().name},
                      {"cpu", std::to_string(amount.cpu())},  // mmog-lint: allow(hot-string)
                      {"id", std::to_string(alloc_id)},       // mmog-lint: allow(hot-string)
                      {"reason", reason}});
      }
    }
    alloc_pool.erase(unit.allocs, slot);
    // Conservation fix: recompute the exact in-order sum instead of the
    // historical subtract-and-clamp, whose silent negative-component drops
    // let `allocated` drift away from Σ amounts.
    unit.allocated = alloc_pool.sum_amounts(unit.allocs);
    if (resilient) unit.backoff.record_failure(alloc_dc, step);
  };

  // Graceful degradation: make room for `needy` by force-releasing
  // allocations of strictly lower-priority units hosted in its candidate
  // centers — lowest priority first, newest allocation first. Returns true
  // when anything was freed (the caller then retries the acquisition).
  auto shed_for = [&](const DemandUnit& needy, const util::ResourceVector& need,
                      std::size_t step) {
    double need_cpu = need.cpu();
    bool freed = false;
    while (need_cpu > 1e-9) {
      std::size_t victim_unit = units.size();
      AllocPool::Index victim_slot = AllocPool::kNil;
      int victim_priority = INT_MAX;
      std::size_t victim_id = 0;
      for (std::size_t u = 0; u < units.size(); ++u) {
        const DemandUnit& unit = units[u];
        if (&unit == &needy || unit.priority >= needy.priority) continue;
        for (auto a = unit.allocs.head; a != AllocPool::kNil;
             a = alloc_pool.next(a)) {
          const std::size_t d = alloc_pool.dc_index(a);
          // Freeing capacity only helps where needy can actually rent.
          if (needy.base_class_by_dc[d] == kNotACandidate) continue;
          if (schedule.grants_blocked_at(d, step)) continue;
          if (latency_violated(needy, d, step)) continue;
          if (resilient && needy.backoff.excluded(d, step)) continue;
          const std::size_t id = alloc_pool.id(a);
          if (unit.priority < victim_priority ||
              (unit.priority == victim_priority && id > victim_id)) {
            victim_unit = u;
            victim_slot = a;
            victim_priority = unit.priority;
            victim_id = id;
          }
        }
      }
      if (victim_unit >= units.size()) break;
      const double freed_cpu = alloc_pool.amount(victim_slot).cpu();
      game_shed[units[victim_unit].game_id] = 1;
      if (rec) rec->count("resilience.shed");
      force_release(victim_unit, victim_slot, step, "shed");
      need_cpu -= freed_cpu;
      freed = true;
    }
    return freed;
  };
  // mmog-lint: hot-end

  // Resume from a checkpoint: every config-derived structure above was
  // rebuilt normally; now overwrite each loop-carried value with the
  // snapshot and start the loop at the saved boundary. Geometry and the
  // expanded fault schedule are verified first — a checkpoint from a
  // different configuration must fail loudly, never resume quietly.
  std::size_t start_step = 0;
  if (config.restore_from != nullptr) {
    const CheckpointState& st = *config.restore_from;
    const auto mismatch = [](const std::string& what) {
      throw std::invalid_argument(
          "simulate: checkpoint does not match the configuration (" + what +
          ")");
    };
    if (st.steps != steps || st.next_step > steps) mismatch("horizon");
    if (st.fault_events != schedule.events()) mismatch("fault schedule");
    if (st.ledgers.size() != ledgers.size()) mismatch("data centers");
    if (st.units.size() != units.size()) mismatch("demand units");
    if (st.game_sla.size() != config.games.size() ||
        st.game_step_metrics.size() != config.games.size()) {
      mismatch("games");
    }
    if (st.step_metrics.size() != st.next_step) mismatch("metrics length");
    for (std::size_t u = 0; u < units.size(); ++u) {
      const auto& uc = st.units[u];
      if (uc.game_id != units[u].game_id ||
          uc.region != units[u].region_name ||
          uc.groups.size() != units[u].groups.size()) {
        mismatch("unit " + std::to_string(u));
      }
    }
    for (std::size_t d = 0; d < ledgers.size(); ++d) {
      ledgers[d].restore(st.ledgers[d].in_use,
                         st.ledgers[d].capacity_fraction);
      dc_cpu_sum[d] = st.ledgers[d].cpu_sum;
      dc_cpu_peak[d] = st.ledgers[d].cpu_peak;
      dc_origin_sum[d] = st.ledgers[d].origin_sum;
    }
    for (std::size_t u = 0; u < units.size(); ++u) {
      DemandUnit& unit = units[u];
      const auto& uc = st.units[u];
      alloc_pool.assign(unit.allocs, uc.allocations);
      unit.allocated = uc.allocated;
      unit.backoff.restore_entries(uc.backoff);
      for (std::size_t s = 0; s < unit.groups.size(); ++s) {
        auto& stream = unit.groups[s];
        const auto& gc = uc.groups[s];
        if (stream.predictor) {
          if (gc.predictor != stream.predictor->name()) {
            mismatch("predictor of unit " + std::to_string(u));
          }
          stream.predictor->load_state(gc.state);
        } else if (!gc.predictor.empty() || !gc.state.empty()) {
          mismatch("predictor of unit " + std::to_string(u));
        }
        stream.last_prediction = gc.last_prediction;
        stream.abs_error_ewma = gc.abs_error_ewma;
      }
    }
    next_allocation_id = st.next_allocation_id;
    result.unplaced_cpu_unit_steps = st.unplaced_cpu_unit_steps;
    result.total_cost = st.total_cost;
    for (const auto& m : st.step_metrics) result.metrics.add(m);
    result.games.resize(config.games.size());
    for (std::size_t g = 0; g < config.games.size(); ++g) {
      result.games[g].name = config.games[g].name;
      if (st.game_step_metrics[g].size() != st.next_step) {
        mismatch("metrics length of game " + std::to_string(g));
      }
      for (const auto& m : st.game_step_metrics[g]) {
        result.games[g].metrics.add(m);
      }
      game_sla[g].restore(st.game_sla[g]);
    }
    overall_sla.restore(st.overall_sla);
    if (rec) {
      // Apply counter *deltas*: this process already emitted the same
      // pre-loop counts the producing run did (unit-build offer
      // rejections), so adding totals verbatim would double them.
      const auto current = rec->snapshot().counters;
      for (const auto& [name, value] : st.counters) {
        const auto it = current.find(name);
        const double have = it == current.end() ? 0.0 : it->second;
        if (value > have) rec->count(name, value - have);
      }
    }
    if (audit && !st.audit_records.empty()) {
      // append_batch reassigns consecutive sequence numbers from 0, so the
      // preloaded prefix and every later record keep the original seqs.
      auto prefix = st.audit_records;
      audit->append_batch(prefix);
    }
    start_step = st.next_step;
  }

  // Static mode: the industry practice the paper compares against — every
  // server group gets a dedicated machine sized for a full game server
  // (capacity for `reference_players`), provisioned once and held forever.
  // A restored run skips it: the one-shot allocations are in the snapshot.
  if (config.mode == AllocationMode::kStatic &&
      config.restore_from == nullptr) {
    if (have_faults) {
      for (std::size_t d = 0; d < ledgers.size(); ++d) {
        ledgers[d].set_capacity_fraction(schedule.capacity_fraction_at(d, 0));
      }
    }
    const obs::PhaseScope scope(rec, "static_allocate", 0);
    for (std::size_t idx : order) {
      DemandUnit& unit = units[idx];
      const auto& load = config.games[unit.game_id].load;
      const auto full_servers = load.demand(load.reference_players) *
                                static_cast<double>(unit.groups.size());
      obs::AuditRecord ar;
      if (audit) {
        ar.kind = obs::AuditKind::kStatic;
        ar.game = static_cast<std::uint32_t>(unit.game_id);
        ar.region = unit.region_name;
        ar.predicted_players = load.reference_players *
                               static_cast<double>(unit.groups.size());
        ar.demand_cpu = full_servers.cpu();
        ar.requested_cpu = full_servers.cpu();
      }
      const auto unmet =
          try_allocate(unit, full_servers, 0,
                       std::numeric_limits<std::size_t>::max(),
                       audit ? &ar : nullptr, nullptr);
      result.unplaced_cpu_unit_steps +=
          unmet.cpu() * static_cast<double>(steps);
      if (audit) {
        ar.unmet_cpu = unmet.cpu();
        audit_backfill[idx].push_back(audit_batch.size());
        audit_batch.push_back(std::move(ar));
      }
    }
  }

  // Live telemetry: one sample vector reused every step (metric names are
  // fixed up front, so per-step sampling rewrites values and never
  // allocates). Only built when the recorder has a time-series store or
  // alert engine attached; sampling reads simulation state and never
  // feeds back into it, so runs stay bit-identical either way.
  const bool live = rec != nullptr && rec->live();
  std::vector<obs::Sample> live_samples;
  std::size_t live_game_base = 0;
  if (live) {
    live_samples.push_back({"core.allocated_cpu", 0.0});
    live_samples.push_back({"core.demand_cpu", 0.0});
    live_samples.push_back({"core.underalloc_frac", 0.0});
    live_samples.push_back({"core.overalloc_frac", 0.0});
    live_samples.push_back({"core.predictor_abs_err", 0.0});
    live_samples.push_back({"core.unplaced_cpu_unit_steps", 0.0});
    live_samples.push_back({"sla.availability_min_pct", 100.0});
    live_game_base = live_samples.size();
    for (const auto& game : config.games) {
      live_samples.push_back({"sla.availability_pct." + game.name, 100.0});
    }
  }

  // Snapshot every loop-carried value at a step boundary (`next_step`
  // steps are complete) and hand it to the sink. Runs on the simulation
  // thread between steps, so no state is mid-mutation.
  auto capture_checkpoint = [&](std::size_t next_step) {
    CheckpointState st;
    st.next_step = next_step;
    st.steps = steps;
    st.next_allocation_id = next_allocation_id;
    st.unplaced_cpu_unit_steps = result.unplaced_cpu_unit_steps;
    st.total_cost = result.total_cost;
    st.fault_events = schedule.events();
    st.ledgers.reserve(ledgers.size());
    for (std::size_t d = 0; d < ledgers.size(); ++d) {
      LedgerCheckpoint lc;
      lc.in_use = ledgers[d].in_use();
      lc.capacity_fraction = ledgers[d].capacity_fraction();
      lc.cpu_sum = dc_cpu_sum[d];
      lc.cpu_peak = dc_cpu_peak[d];
      lc.origin_sum = dc_origin_sum[d];
      st.ledgers.push_back(std::move(lc));
    }
    st.units.reserve(units.size());
    for (const auto& unit : units) {
      UnitCheckpoint uc;
      uc.game_id = unit.game_id;
      uc.region = unit.region_name;
      uc.allocated = unit.allocated;
      uc.allocations = alloc_pool.to_vector(unit.allocs);
      uc.backoff = unit.backoff.entries();
      uc.groups.reserve(unit.groups.size());
      for (const auto& stream : unit.groups) {
        GroupCheckpoint gc;
        if (stream.predictor) {
          gc.predictor = std::string(stream.predictor->name());
          stream.predictor->save_state(gc.state);
        }
        gc.last_prediction = stream.last_prediction;
        gc.abs_error_ewma = stream.abs_error_ewma;
        uc.groups.push_back(std::move(gc));
      }
      st.units.push_back(std::move(uc));
    }
    st.step_metrics = result.metrics.step_metrics();
    st.game_step_metrics.reserve(result.games.size());
    for (const auto& game : result.games) {
      st.game_step_metrics.push_back(game.metrics.step_metrics());
    }
    st.overall_sla = overall_sla.state();
    st.game_sla.reserve(game_sla.size());
    for (const auto& tracker : game_sla) {
      st.game_sla.push_back(tracker.state());
    }
    if (rec) st.counters = rec->snapshot().counters;
    if (audit) st.audit_records = audit->records();
    config.checkpoint_sink(st);
  };

  // Reused per-step scratch: the padded demand of every unit, the fault
  // flags of units that lost capacity this step, and the per-game metric
  // slots — all hoisted out of the loop so the step phases allocate
  // nothing (see the hot-begin regions and the bench allocs/step gate).
  std::vector<util::ResourceVector> demands(units.size());
  std::vector<char> lost_capacity(units.size(), 0);
  std::vector<StepMetrics> per_game(config.games.size());
  // Release-pass scratch: the releasable allocations of one unit, sorted
  // CPU-descending (ties by list position) for the single-pass release.
  struct ReleaseCand {
    double cpu;
    std::uint32_t ordinal;
    AllocPool::Index slot;
  };
  std::vector<ReleaseCand> release_order;
  release_order.reserve(64);

  std::size_t completed = steps;
  for (std::size_t t = start_step; t < steps; ++t) {
    const obs::PhaseScope step_scope(rec, "step", t, "step");
    if (have_faults) {
      // Apply this step's fault state: capacity fractions on every ledger,
      // begin/end markers and a downed-center gauge for the recorder.
      for (std::size_t d = 0; d < ledgers.size(); ++d) {
        ledgers[d].set_capacity_fraction(schedule.capacity_fraction_at(d, t));
      }
      if (rec) {
        for (const auto& ev : schedule.events()) {
          if (ev.from_step == t) {
            rec->count("fault.begun");
            rec->instant("fault.begin", "fault", t,
                         {{"kind", std::string(fault_kind_name(ev.kind))},
                          {"dc", ledgers[ev.dc_index].spec().name},
                          {"severity", std::to_string(ev.severity)},
                          {"until_step", std::to_string(ev.to_step)}});
          }
          if (ev.to_step == t) {
            rec->instant("fault.end", "fault", t,
                         {{"kind", std::string(fault_kind_name(ev.kind))},
                          {"dc", ledgers[ev.dc_index].spec().name}});
          }
        }
        double down = 0.0;
        for (std::size_t d = 0; d < ledgers.size(); ++d) {
          if (schedule.outage_at(d, t)) down += 1.0;
        }
        if (down > 0.0) rec->count("fault.dc_down_steps", down);
      }
    }
    std::fill(game_shed.begin(), game_shed.end(), 0);

    if (config.mode == AllocationMode::kDynamic) {
      {
        // Phase 1 — predict: one online prediction per server group (§IV-B),
        // sharded across workers when config.threads > 1 (the phase is the
        // provisioning loop's scaling bottleneck, Fig. 6). run() joins all
        // shards before returning, so phase 2 always reads complete slots.
        // mmog-lint: hot-begin(predict)
        const obs::PhaseScope scope(rec, "predict", t);
        predict_runner.run(predict_slots, rec);
        if (rec) rec->count("predict.issued", static_cast<double>(total_groups));
        // mmog-lint: hot-end
      }

      {
        // Phase 2 — safety padding: region demand = sum of per-group
        // predictions through the (nonlinear) load model, each padded by the
        // predictor's own recent error (the §V-C over-allocation mechanism).
        // mmog-lint: hot-begin(pad)
        const obs::PhaseScope scope(rec, "pad", t);
        // Sharded demand computation: each worker evaluates the load model
        // for its own slots (the expensive part); the reduction below adds
        // them back per unit in fixed group order — the exact add sequence
        // of the historical serial loop.
        PadCtx pad_ctx{pad_slots.data(), pad_slots.size(),
                       config.safety_factor, audit != nullptr};
        if (team != nullptr) {
          team->run(pad_shard, &pad_ctx);
        } else {
          pad_shard(&pad_ctx, 0, 1);
        }
        std::size_t slot_cursor = 0;
        for (std::size_t idx : order) {
          DemandUnit& unit = units[idx];
          const auto& load = config.games[unit.game_id].load;
          util::ResourceVector demand{};
          const PadSlot* const unit_slots = pad_slots.data() + slot_cursor;
          slot_cursor += unit.groups.size();
          for (std::size_t g = 0; g < unit.groups.size(); ++g) {
            demand += unit_slots[g].demand;
          }
          if (resilient && res_policy.standby_reserve_servers > 0.0) {
            // N+k standby reserve: hold spare full servers so losing up to
            // k servers' worth of rented capacity costs no shortfall.
            demand += load.demand(load.reference_players) *
                      res_policy.standby_reserve_servers;
          }
          demands[idx] = demand;
          if (audit) {
            // The safety margin (§V-C) is whatever the padding added on top
            // of the raw prediction through the load model — including the
            // N+k standby reserve when enabled.
            double predicted = 0.0;
            util::ResourceVector raw{};
            for (std::size_t g = 0; g < unit.groups.size(); ++g) {
              predicted += unit.groups[g].last_prediction;
              raw += unit_slots[g].raw;
            }
            audit_predicted[idx] = predicted;
            audit_margin[idx] = demand.cpu() - raw.cpu();
          }
          if (rec) {
            rec->count("request.padded");
            if (rec->detail()) {
              rec->detail_instant("request.padded", "demand", t,
                                  {{"region", unit.region_name},
                                   {"cpu", std::to_string(demand.cpu())}});  // mmog-lint: allow(hot-string)
            }
          }
        }
        // mmog-lint: hot-end
      }

      {
        // Phase 3 — matching: release what the prediction no longer needs,
        // then acquire the missing difference (§II-C request-offer matching).
        // The phase splits in two: a sharded candidate filter (pure
        // per-(unit, center) fault verdicts, parallel across the team) and
        // the serial fixed-order commit below it, timed separately as
        // "match_commit" so the profiler shows how much of the phase is
        // inherently serial.
        // mmog-lint: hot-begin(match)
        const obs::PhaseScope scope(rec, "match", t);
        if (!cand_status.empty()) {
          CandidateFilterCtx filter_ctx{&units, &schedule, &cand_offset,
                                        &cand_status, t};
          if (team != nullptr) {
            team->run(candidate_filter_shard, &filter_ctx);
          } else {
            candidate_filter_shard(&filter_ctx, 0, 1);
          }
        }
        const obs::PhaseScope commit_scope(rec, "match_commit", t);
        for (std::size_t idx : order) {
          DemandUnit& unit = units[idx];
          const auto& demand = demands[idx];
          const std::uint8_t* const filter =
              cand_status.empty() ? nullptr
                                  : cand_status.data() + cand_offset[idx];
          // The conservation invariant must have survived every mutation
          // since the last commit (grants, evictions, shedding).
          assert(unit.allocated == alloc_pool.sum_amounts(unit.allocs));
          obs::AuditRecord ar;
          if (audit) {
            ar.step = t;
            ar.kind = obs::AuditKind::kMatch;
            ar.game = static_cast<std::uint32_t>(unit.game_id);
            ar.region = unit.region_name;
            ar.predicted_players = audit_predicted[idx];
            ar.margin_cpu = audit_margin[idx];
            ar.demand_cpu = demand.cpu();
            ar.held_cpu = unit.allocated.cpu();
          }

          // Release expired allocations no longer needed, largest first so
          // coarse chunks go back to the pool as soon as possible. The
          // historical loop rescanned every allocation after each release
          // (O(A²)); since releasing only shrinks `allocated`, a candidate
          // whose removal stops covering demand once can never become
          // feasible again — so one pass over a CPU-descending order (ties
          // by list position, like the old first-index-wins scan) picks the
          // same releases in the same order.
          release_order.clear();
          std::uint32_t ordinal = 0;
          for (auto a = unit.allocs.head; a != AllocPool::kNil;
               a = alloc_pool.next(a), ++ordinal) {
            if (!alloc_pool.releasable_at(a, t)) continue;
            const double cpu = alloc_pool.amount(a).cpu();
            // The historical scan never picked zero-CPU allocations (its
            // best-so-far started at 0 with a strict comparison).
            if (cpu <= 0.0) continue;
            release_order.push_back({cpu, ordinal, a});
          }
          std::sort(release_order.begin(), release_order.end(),
                    [](const ReleaseCand& a, const ReleaseCand& b) {
                      if (a.cpu != b.cpu) return a.cpu > b.cpu;
                      return a.ordinal < b.ordinal;
                    });
          for (const ReleaseCand& cand : release_order) {
            const auto amount = alloc_pool.amount(cand.slot);
            // No clamp before covers(): `allocated` is the exact in-order
            // sum of non-negative amounts, so subtracting one member can
            // never produce a negative component. The old code clamped
            // first, which masked drifted negatives and (with the
            // subtract-and-clamp below) let `allocated` diverge from
            // Σ amounts.
            const auto rest = unit.allocated - amount;
            if (!rest.covers(demand)) continue;
            const std::size_t alloc_dc = alloc_pool.dc_index(cand.slot);
            ledgers[alloc_dc].release(amount);
            if (rec) {
              rec->count("alloc.released");
              if (rec->tracing()) {
                rec->instant(
                    "alloc.released", "alloc", t,
                    {{"dc", ledgers[alloc_dc].spec().name},
                     {"cpu", std::to_string(amount.cpu())},  // mmog-lint: allow(hot-string)
                     {"id", std::to_string(alloc_pool.id(cand.slot))}});  // mmog-lint: allow(hot-string)
              }
            }
            alloc_pool.erase(unit.allocs, cand.slot);
            unit.allocated = alloc_pool.sum_amounts(unit.allocs);
            if (audit) ar.released_cpu += amount.cpu();
          }

          // Acquire what the prediction says is missing.
          if (!unit.allocated.covers(demand)) {
            const auto need = demand - unit.allocated;
            if (audit) {
              ar.requested_cpu = need.clamped_non_negative().cpu();
            }
            auto unmet =
                try_allocate(unit, need, t, 1, audit ? &ar : nullptr, filter);
            if (unmet.cpu() > 1e-9 && resilient &&
                res_policy.shed_low_priority) {
              // Total supply cannot cover demand: degrade lower-priority
              // games to keep this one whole.
              if (shed_for(unit, unmet, t)) {
                unmet = try_allocate(unit, unmet, t, 1,
                                     audit ? &ar : nullptr, filter);
              }
            }
            if (audit) ar.unmet_cpu = unmet.cpu();
            result.unplaced_cpu_unit_steps += unmet.cpu();
          }
          // Only decisions that acted make a record — a unit whose holding
          // already matches its demand stays silent, keeping trails compact.
          if (audit && (ar.released_cpu > 0.0 || ar.requested_cpu > 0.0)) {
            audit_backfill[idx].push_back(audit_batch.size());
            audit_batch.push_back(std::move(ar));
          }
        }
        // mmog-lint: hot-end
      }
    }

    // Failure injection: a center going down mid-interval takes its
    // allocations with it; without the resilience policy the operator can
    // only re-place the demand at the next 2-minute step, which is the
    // shortfall the metrics observe.
    // mmog-lint: hot-begin(fault-inject)
    std::fill(lost_capacity.begin(), lost_capacity.end(), 0);
    if (have_faults) {
      for (std::size_t u = 0; u < units.size(); ++u) {
        DemandUnit& unit = units[u];
        // Newest-first, exactly like the reverse index walk over the old
        // vector: grab prev before the erase unlinks the slot.
        for (auto a = unit.allocs.tail; a != AllocPool::kNil;) {
          const auto before = alloc_pool.prev(a);
          const std::size_t d = alloc_pool.dc_index(a);
          const char* reason = nullptr;
          if (schedule.outage_at(d, t)) {
            reason = "outage";
          } else if (latency_violated(unit, d, t)) {
            reason = "latency";
          }
          if (reason != nullptr) {
            force_release(u, a, t, reason);
            lost_capacity[u] = 1;
          }
          a = before;
        }
      }
      // Partial capacity loss: evict newest-first until the survivors fit
      // into the degraded capacity (no preemption granularity below one
      // allocation, §II-B).
      for (std::size_t d = 0; d < ledgers.size(); ++d) {
        while (ledgers[d].over_capacity()) {
          std::size_t victim_unit = units.size();
          AllocPool::Index victim_slot = AllocPool::kNil;
          std::size_t victim_id = 0;
          for (std::size_t u = 0; u < units.size(); ++u) {
            for (auto a = units[u].allocs.head; a != AllocPool::kNil;
                 a = alloc_pool.next(a)) {
              if (alloc_pool.dc_index(a) != d) continue;
              if (alloc_pool.id(a) >= victim_id) {
                victim_unit = u;
                victim_slot = a;
                victim_id = alloc_pool.id(a);
              }
            }
          }
          if (victim_unit >= units.size()) break;
          force_release(victim_unit, victim_slot, t, "capacity");
          lost_capacity[victim_unit] = 1;
        }
      }
    }
    // mmog-lint: hot-end

    // Resilient re-placement: what a fault took this step is re-requested
    // within the same 2-minute interval — the failed center is excluded by
    // its backoff window, so the walk goes straight to the survivors.
    if (resilient && config.mode == AllocationMode::kDynamic) {
      bool any_lost = false;
      for (const char lost : lost_capacity) any_lost |= (lost != 0);
      if (any_lost) {
        // mmog-lint: hot-begin(replace)
        const obs::PhaseScope scope(rec, "replace", t);
        for (std::size_t idx : order) {
          if (!lost_capacity[idx]) continue;
          DemandUnit& unit = units[idx];
          const auto& demand = demands[idx];
          if (unit.allocated.covers(demand)) continue;
          if (rec) rec->count("resilience.retry");
          obs::AuditRecord ar;
          if (audit) {
            ar.step = t;
            ar.kind = obs::AuditKind::kReplace;
            ar.game = static_cast<std::uint32_t>(unit.game_id);
            ar.region = unit.region_name;
            ar.predicted_players = audit_predicted[idx];
            ar.margin_cpu = audit_margin[idx];
            ar.demand_cpu = demand.cpu();
            ar.held_cpu = unit.allocated.cpu();
            ar.requested_cpu =
                (demand - unit.allocated).clamped_non_negative().cpu();
          }
          // The step's filter statuses stay valid here: they are pure in
          // (center, step) and the fault walk does not touch the schedule.
          const std::uint8_t* const filter =
              cand_status.empty() ? nullptr
                                  : cand_status.data() + cand_offset[idx];
          auto unmet = try_allocate(unit, demand - unit.allocated, t, 1,
                                    audit ? &ar : nullptr, filter);
          if (unmet.cpu() > 1e-9 && res_policy.shed_low_priority) {
            if (shed_for(unit, unmet, t)) {
              unmet = try_allocate(unit, unmet, t, 1, audit ? &ar : nullptr,
                                   filter);
            }
          }
          if (unmet.cpu() <= 1e-9) {
            if (rec) rec->count("resilience.replaced");
          }
          result.unplaced_cpu_unit_steps += unmet.cpu();
          if (audit) {
            ar.unmet_cpu = unmet.cpu();
            audit_backfill[idx].push_back(audit_batch.size());
            audit_batch.push_back(std::move(ar));
          }
        }
        // mmog-lint: hot-end
      }
    }

    // Phase 4 — metric accounting: the actual load materializes; score the
    // step (globally and per game).
    // mmog-lint: hot-begin(account)
    const obs::PhaseScope account_scope(rec, "account", t);
    StepMetrics step_metrics;
    step_metrics.machines = total_groups;
    std::fill(per_game.begin(), per_game.end(), StepMetrics{});
    for (std::size_t u = 0; u < units.size(); ++u) {
      DemandUnit& unit = units[u];
      const auto& load = config.games[unit.game_id].load;
      util::ResourceVector lambda{};
      double actual_players_total = 0.0;
      for (auto& stream : unit.groups) {
        const double actual = (*stream.players)[t];
        actual_players_total += actual;
        lambda += load.demand(actual);
        if (stream.predictor) {
          constexpr double kErrorEwmaAlpha = 0.05;
          stream.abs_error_ewma =
              (1.0 - kErrorEwmaAlpha) * stream.abs_error_ewma +
              kErrorEwmaAlpha * std::abs(actual - stream.last_prediction);
          stream.predictor->observe(actual);
        }
      }
      // Only allocations past their setup delay serve load.
      util::ResourceVector usable = unit.allocated;
      if (config.provisioning_delay_steps > 0) {
        usable = {};
        for (auto a = unit.allocs.head; a != AllocPool::kNil;
             a = alloc_pool.next(a)) {
          if (alloc_pool.usable_at(a, t)) usable += alloc_pool.amount(a);
        }
      }
      if (audit) {
        // The step's decisions were made on predictions; now the actual
        // load is known, close the loop in their records.
        for (const std::size_t rec_idx : audit_backfill[u]) {
          audit_batch[rec_idx].actual_players = actual_players_total;
        }
      }
      step_metrics.allocated += usable;
      step_metrics.used += lambda;
      auto& game_step = per_game[unit.game_id];
      game_step.allocated += usable;
      game_step.used += lambda;
      game_step.machines += unit.groups.size();
      for (std::size_t i = 0; i < util::kResourceKinds; ++i) {
        const double short_i = std::min(usable.v[i] - lambda.v[i], 0.0);
        step_metrics.shortfall.v[i] += short_i;
        game_step.shortfall.v[i] += short_i;
      }
    }
    if (rec &&
        step_metrics.significant_under_allocation(config.event_threshold_pct)) {
      rec->count("event.under_allocation");
      if (rec->tracing()) {
        rec->instant(
            "event.under_allocation", "event", t,
            {{"under_pct",
              std::to_string(  // mmog-lint: allow(hot-string)
                  step_metrics.under_allocation_pct(
                      util::ResourceKind::kCpu))}});
      }
    }
    result.metrics.add(step_metrics);
    if (result.games.empty()) {
      result.games.resize(config.games.size());
      for (std::size_t g = 0; g < config.games.size(); ++g) {
        result.games[g].name = config.games[g].name;
      }
    }
    overall_sla.observe(
        step_metrics.significant_under_allocation(config.event_threshold_pct));
    for (std::size_t g = 0; g < config.games.size(); ++g) {
      result.games[g].metrics.add(per_game[g]);
      const auto transition = game_sla[g].observe(
          per_game[g].significant_under_allocation(config.event_threshold_pct),
          game_shed[g] != 0);
      if (rec && have_faults &&
          transition != SlaTracker::Transition::kNone) {
        rec->instant(transition == SlaTracker::Transition::kBreachBegan
                         ? "sla.breach.begin"
                         : "sla.breach.end",
                     "sla", t, {{"game", config.games[g].name}});
      }
    }
    // mmog-lint: hot-end

    if (live) {
      live_samples[0].value = step_metrics.allocated.cpu();
      live_samples[1].value = step_metrics.used.cpu();
      live_samples[2].value =
          -step_metrics.under_allocation_pct(util::ResourceKind::kCpu) /
          100.0;
      live_samples[3].value =
          step_metrics.over_allocation_pct(util::ResourceKind::kCpu) / 100.0;
      double err_sum = 0.0;
      for (const auto& unit : units) {
        for (const auto& stream : unit.groups) {
          err_sum += stream.abs_error_ewma;
        }
      }
      live_samples[4].value =
          total_groups > 0 ? err_sum / static_cast<double>(total_groups)
                           : 0.0;
      live_samples[5].value = result.unplaced_cpu_unit_steps;
      double min_avail = 100.0;
      for (std::size_t g = 0; g < config.games.size(); ++g) {
        const double avail = game_sla[g].stats().availability_pct();
        live_samples[live_game_base + g].value = avail;
        min_avail = std::min(min_avail, avail);
      }
      live_samples[6].value = min_avail;
      rec->sample_step(t, live_samples);
    }

    for (std::size_t d = 0; d < ledgers.size(); ++d) {
      const double cpu = ledgers[d].in_use().cpu();
      dc_cpu_sum[d] += cpu;
      dc_cpu_peak[d] = std::max(dc_cpu_peak[d], cpu);
      result.total_cost += cpu *
                           ledgers[d].spec().policy.cpu_unit_price_per_hour *
                           (util::kSampleStepSeconds / 3600.0);
    }
    for (const auto& unit : units) {
      for (auto a = unit.allocs.head; a != AllocPool::kNil;
           a = alloc_pool.next(a)) {
        dc_origin_sum[alloc_pool.dc_index(a)][unit.region_name] +=
            alloc_pool.amount(a).cpu();
      }
    }
    if (audit) {
      audit->append_batch(audit_batch);
      for (auto& list : audit_backfill) list.clear();
    }
    if (profiler) {
      profiler->note_step(rec->registry(),
                          static_cast<std::uint64_t>(t + 1 - start_step));
    }

    // Step t is complete (audit flushed, accumulators final): a clean
    // boundary for checkpoint capture and cooperative shutdown.
    const bool stop_requested =
        config.stop_flag != nullptr &&
        config.stop_flag->load(std::memory_order_relaxed);
    if (config.checkpoint_sink &&
        ((config.checkpoint_every_steps > 0 &&
          (t + 1) % config.checkpoint_every_steps == 0) ||
         stop_requested)) {
      capture_checkpoint(t + 1);
    }
    if (stop_requested) {
      completed = t + 1;
      result.interrupted = true;
      break;
    }
  }

  result.steps = completed;
  result.sla = overall_sla.stats();
  for (std::size_t g = 0;
       g < config.games.size() && g < result.games.size(); ++g) {
    result.games[g].sla = game_sla[g].stats();
  }

  result.datacenters.reserve(ledgers.size());
  for (std::size_t d = 0; d < ledgers.size(); ++d) {
    DataCenterUsage usage;
    usage.name = ledgers[d].spec().name;
    usage.capacity_cpu = ledgers[d].spec().total_capacity().cpu();
    usage.avg_allocated_cpu = dc_cpu_sum[d] / static_cast<double>(completed);
    usage.peak_allocated_cpu = dc_cpu_peak[d];
    for (const auto& [origin, sum] : dc_origin_sum[d]) {
      usage.avg_allocated_by_origin[origin] =
          sum / static_cast<double>(completed);
    }
    result.datacenters.push_back(std::move(usage));
  }
  return result;
}

std::vector<std::size_t> recovery_lag_steps(
    const MetricsAccumulator& metrics,
    const std::vector<fault::FaultEvent>& events, double threshold_pct) {
  const auto& steps = metrics.step_metrics();
  std::vector<std::size_t> lags;
  lags.reserve(events.size());
  for (const auto& ev : events) {
    if (ev.to_step >= steps.size()) continue;  // recovers outside the run
    std::size_t lag = kNeverRecovered;
    for (std::size_t t = ev.to_step; t < steps.size(); ++t) {
      if (!steps[t].significant_under_allocation(threshold_pct)) {
        lag = t - ev.to_step;
        break;
      }
    }
    lags.push_back(lag);
  }
  return lags;
}

std::shared_ptr<const predict::NeuralModel> neural_model_from_workload(
    const trace::WorldTrace& workload, std::size_t lead_in_steps,
    predict::NeuralConfig config, std::size_t max_training_groups) {
  std::vector<util::TimeSeries> histories;
  for (const auto& region : workload.regions) {
    for (const auto& group : region.groups) {
      if (histories.size() >= max_training_groups) break;
      histories.push_back(group.players.slice(0, lead_in_steps));
    }
    if (histories.size() >= max_training_groups) break;
  }
  if (histories.empty()) {
    throw std::invalid_argument(
        "neural_factory_from_workload: empty workload");
  }
  return std::make_shared<const predict::NeuralModel>(
      predict::NeuralModel::fit(config, histories));
}

predict::PredictorFactory neural_factory_from_model(
    std::shared_ptr<const predict::NeuralModel> model) {
  if (!model) {
    throw std::invalid_argument("neural_factory_from_model: null model");
  }
  return [model = std::move(model)] {
    return std::make_unique<predict::NeuralPredictor>(model);
  };
}

predict::PredictorFactory neural_factory_from_workload(
    const trace::WorldTrace& workload, std::size_t lead_in_steps,
    predict::NeuralConfig config, std::size_t max_training_groups) {
  return neural_factory_from_model(neural_model_from_workload(
      workload, lead_in_steps, config, max_training_groups));
}

}  // namespace mmog::core
