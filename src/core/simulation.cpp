#include "core/simulation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

namespace mmog::core {
namespace {

/// One predicted sub-stream: a server group's player counts plus its online
/// predictor (§IV-B: prediction happens per sub-zone; the region estimate is
/// the sum of the per-zone predictions).
struct GroupStream {
  const util::TimeSeries* players = nullptr;
  std::unique_ptr<predict::Predictor> predictor;
  double last_prediction = 0.0;
  double abs_error_ewma = 0.0;  ///< recent one-step |error| of the predictor
};

/// The unit at which a game operator requests resources: one game in one
/// geographic region (§II-C: operators submit aggregate requests to data
/// centers; §V-E routes them by the region's location).
struct DemandUnit {
  std::size_t game_id = 0;
  std::string region_name;
  std::vector<GroupStream> groups;
  std::vector<dc::Allocation> allocations;
  util::ResourceVector allocated{};
  std::vector<std::size_t> candidates;  ///< matcher-ordered DC indices
  int priority = 0;
};

/// The resources one offer grants against `need` under `policy`, capped by
/// the data center's remaining capacity: whole bundles for the policy's
/// bulk-constrained resources (the hoster's quantum, §II-B) plus exact
/// amounts for the unconstrained ones.
util::ResourceVector offer_amount(const util::ResourceVector& need,
                                  const util::ResourceVector& free,
                                  const dc::HostingPolicy& policy) noexcept {
  util::ResourceVector out{};
  if (policy.has_bundles()) {
    const std::size_t k = std::min(policy.bundles_needed(need),
                                   policy.bundles_fitting(free));
    out = policy.bundle_amount(k);
  }
  for (std::size_t i = 0; i < util::kResourceKinds; ++i) {
    if (policy.bulk.v[i] > 0.0) continue;  // covered by bundles
    out.v[i] = std::min(std::max(0.0, need.v[i]), std::max(0.0, free.v[i]));
  }
  return out;
}

}  // namespace

SimulationResult simulate(const SimulationConfig& config) {
  if (config.games.empty()) {
    throw std::invalid_argument("simulate: no games configured");
  }
  if (config.mode == AllocationMode::kDynamic && !config.predictor) {
    throw std::invalid_argument("simulate: dynamic mode needs a predictor");
  }
  if (config.datacenters.empty()) {
    throw std::invalid_argument("simulate: no data centers configured");
  }

  obs::Recorder* const rec = config.recorder;

  const Matcher matcher(config.datacenters);
  std::vector<dc::DataCenterLedger> ledgers;
  ledgers.reserve(config.datacenters.size());
  for (const auto& spec : config.datacenters) ledgers.emplace_back(spec);

  // Build one demand unit per (game, region) and resolve each unit's
  // candidate data centers (matching criteria of §II-C).
  std::vector<DemandUnit> units;
  std::size_t total_groups = 0;
  std::size_t horizon = std::numeric_limits<std::size_t>::max();
  for (std::size_t g = 0; g < config.games.size(); ++g) {
    const auto& game = config.games[g];
    for (const auto& region : game.workload.regions) {
      if (region.groups.empty()) continue;
      const auto site = dc::region_site(region.name);
      DemandUnit unit;
      unit.game_id = g;
      unit.region_name = region.name;
      unit.candidates =
          matcher.candidates(site.location, game.latency_tolerance);
      if (rec) {
        // Matching criterion 2 (§II-C, geographic proximity): centers
        // outside the game's latency tolerance are rejected up front, once
        // per (game, region) request stream.
        rec->count("offer.rejected.latency",
                   static_cast<double>(config.datacenters.size() -
                                       unit.candidates.size()));
      }
      unit.priority = game.priority;
      for (const auto& sg : region.groups) {
        GroupStream stream;
        stream.players = &sg.players;
        if (config.mode == AllocationMode::kDynamic) {
          stream.predictor = config.predictor();
        }
        horizon = std::min(horizon, sg.players.size());
        unit.groups.push_back(std::move(stream));
        ++total_groups;
      }
      units.push_back(std::move(unit));
    }
  }
  if (units.empty() || horizon == 0 ||
      horizon == std::numeric_limits<std::size_t>::max()) {
    throw std::invalid_argument("simulate: empty workload");
  }
  const std::size_t steps =
      config.steps == 0 ? horizon : std::min(config.steps, horizon);

  if (rec) {
    rec->gauge("sim.steps", static_cast<double>(steps));
    rec->gauge("sim.units", static_cast<double>(units.size()));
    rec->gauge("sim.groups", static_cast<double>(total_groups));
    rec->gauge("sim.datacenters",
               static_cast<double>(config.datacenters.size()));
  }

  // Service order: stable by priority when the extension is enabled,
  // otherwise first-come (flattening order).
  std::vector<std::size_t> order(units.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (config.prioritize_by_interaction) {
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return units[a].priority > units[b].priority;
                     });
  }

  std::size_t next_allocation_id = 1;
  SimulationResult result;
  result.steps = steps;

  // Per-DC usage accumulators.
  std::vector<double> dc_cpu_sum(ledgers.size(), 0.0);
  std::vector<double> dc_cpu_peak(ledgers.size(), 0.0);
  std::vector<std::map<std::string, double>> dc_origin_sum(ledgers.size());

  auto dc_down = [&](std::size_t dc_index, std::size_t step) {
    for (const auto& outage : config.outages) {
      if (outage.dc_index == dc_index && outage.active_at(step)) return true;
    }
    return false;
  };

  auto try_allocate = [&](DemandUnit& unit, const util::ResourceVector& need_in,
                          std::size_t step, std::size_t hold_steps) {
    util::ResourceVector need = need_in.clamped_non_negative();
    for (std::size_t cand : unit.candidates) {
      if (dc_down(cand, step)) {
        if (rec) rec->count("offer.rejected.outage");
        continue;
      }
      double outstanding = 0.0;
      for (double v : need.v) outstanding += v;
      if (outstanding <= 1e-9) break;
      auto& ledger = ledgers[cand];
      const auto& policy = ledger.spec().policy;
      const auto amount = offer_amount(need, ledger.free(), policy);
      // CPU drives placement: when CPU is needed, a grant without CPU only
      // wastes bandwidth; and an empty offer is no offer.
      if (need.cpu() > 1e-9 && amount.cpu() <= 1e-9) {
        // Matching criterion 3 (§II-C, offer granularity): the policy's CPU
        // bulk cannot produce a usable offer from this center's free pool.
        if (rec) rec->count("offer.rejected.bulk");
        continue;
      }
      double total = 0.0;
      for (double v : amount.v) total += v;
      if (total <= 1e-9 || !ledger.grant(amount)) {
        // Matching criterion 1 (§II-C, amount fit): nothing left to offer.
        if (rec) rec->count("offer.rejected.amount");
        continue;
      }
      dc::Allocation alloc;
      alloc.id = next_allocation_id++;
      alloc.dc_index = cand;
      alloc.game_id = unit.game_id;
      alloc.amount = amount;
      alloc.start_step = step;
      alloc.usable_step = step + config.provisioning_delay_steps;
      alloc.earliest_release_step =
          hold_steps == std::numeric_limits<std::size_t>::max()
              ? hold_steps
              : step + std::max<std::size_t>(hold_steps,
                                             policy.time_bulk_steps());
      unit.allocations.push_back(alloc);
      unit.allocated += amount;
      need = (need - amount).clamped_non_negative();
      if (rec) {
        rec->count("offer.matched");
        rec->count("alloc.granted");
        rec->instant("alloc.granted", "alloc", step,
                     {{"dc", ledger.spec().name},
                      {"region", unit.region_name},
                      {"cpu", std::to_string(amount.cpu())},
                      {"id", std::to_string(alloc.id)}});
      }
    }
    return need;  // unmet demand
  };

  // Static mode: the industry practice the paper compares against — every
  // server group gets a dedicated machine sized for a full game server
  // (capacity for `reference_players`), provisioned once and held forever.
  if (config.mode == AllocationMode::kStatic) {
    const obs::PhaseScope scope(rec, "static_allocate", 0);
    for (std::size_t idx : order) {
      DemandUnit& unit = units[idx];
      const auto& load = config.games[unit.game_id].load;
      const auto full_servers = load.demand(load.reference_players) *
                                static_cast<double>(unit.groups.size());
      const auto unmet =
          try_allocate(unit, full_servers, 0,
                       std::numeric_limits<std::size_t>::max());
      result.unplaced_cpu_unit_steps +=
          unmet.cpu() * static_cast<double>(steps);
    }
  }

  // Reused per-step scratch: the padded demand of every unit.
  std::vector<util::ResourceVector> demands(units.size());

  for (std::size_t t = 0; t < steps; ++t) {
    const obs::PhaseScope step_scope(rec, "step", t, "step");
    if (config.mode == AllocationMode::kDynamic) {
      {
        // Phase 1 — predict: one online prediction per server group (§IV-B).
        const obs::PhaseScope scope(rec, "predict", t);
        for (std::size_t idx : order) {
          for (auto& stream : units[idx].groups) {
            if (rec) {
              const obs::Stopwatch watch;
              stream.last_prediction = stream.predictor->predict();
              rec->observe_us("predictor.inference_us", watch.elapsed_us());
            } else {
              stream.last_prediction = stream.predictor->predict();
            }
          }
        }
        if (rec) rec->count("predict.issued", static_cast<double>(total_groups));
      }

      {
        // Phase 2 — safety padding: region demand = sum of per-group
        // predictions through the (nonlinear) load model, each padded by the
        // predictor's own recent error (the §V-C over-allocation mechanism).
        const obs::PhaseScope scope(rec, "pad", t);
        for (std::size_t idx : order) {
          DemandUnit& unit = units[idx];
          const auto& load = config.games[unit.game_id].load;
          util::ResourceVector demand{};
          for (const auto& stream : unit.groups) {
            const double padded =
                stream.last_prediction +
                config.safety_factor * stream.abs_error_ewma;
            demand += load.demand(padded);
          }
          demands[idx] = demand;
          if (rec) {
            rec->count("request.padded");
            rec->detail_instant("request.padded", "demand", t,
                                {{"region", unit.region_name},
                                 {"cpu", std::to_string(demand.cpu())}});
          }
        }
      }

      {
        // Phase 3 — matching: release what the prediction no longer needs,
        // then acquire the missing difference (§II-C request-offer matching).
        const obs::PhaseScope scope(rec, "match", t);
        for (std::size_t idx : order) {
          DemandUnit& unit = units[idx];
          const auto& demand = demands[idx];

          // Release expired allocations no longer needed (largest first so
          // coarse chunks go back to the pool as soon as possible).
          bool released = true;
          while (released) {
            released = false;
            std::size_t best = unit.allocations.size();
            double best_cpu = 0.0;
            for (std::size_t a = 0; a < unit.allocations.size(); ++a) {
              const auto& alloc = unit.allocations[a];
              if (!alloc.releasable_at(t)) continue;
              const auto rest = unit.allocated - alloc.amount;
              if (!rest.clamped_non_negative().covers(demand)) continue;
              if (rest.cpu() + 1e-9 < demand.cpu()) continue;
              if (alloc.amount.cpu() > best_cpu) {
                best_cpu = alloc.amount.cpu();
                best = a;
              }
            }
            if (best < unit.allocations.size()) {
              const auto amount = unit.allocations[best].amount;
              ledgers[unit.allocations[best].dc_index].release(amount);
              if (rec) {
                rec->count("alloc.released");
                rec->instant(
                    "alloc.released", "alloc", t,
                    {{"dc", ledgers[unit.allocations[best].dc_index]
                                .spec()
                                .name},
                     {"cpu", std::to_string(amount.cpu())},
                     {"id", std::to_string(unit.allocations[best].id)}});
              }
              unit.allocated -= amount;
              unit.allocated = unit.allocated.clamped_non_negative();
              unit.allocations.erase(unit.allocations.begin() +
                                     static_cast<std::ptrdiff_t>(best));
              released = true;
            }
          }

          // Acquire what the prediction says is missing.
          if (!unit.allocated.covers(demand)) {
            const auto need = demand - unit.allocated;
            const auto unmet = try_allocate(unit, need, t, 1);
            result.unplaced_cpu_unit_steps += unmet.cpu();
          }
        }
      }
    }

    // Failure injection: a center going down mid-interval takes its
    // allocations with it; the operator can only re-place the demand at the
    // next 2-minute step, which is the shortfall the metrics observe.
    for (auto& unit : units) {
      for (std::size_t a = unit.allocations.size(); a-- > 0;) {
        const auto& alloc = unit.allocations[a];
        if (!dc_down(alloc.dc_index, t)) continue;
        ledgers[alloc.dc_index].release(alloc.amount);
        if (rec) {
          rec->count("alloc.force_released");
          rec->instant("alloc.force_released", "alloc", t,
                       {{"dc", ledgers[alloc.dc_index].spec().name},
                        {"cpu", std::to_string(alloc.amount.cpu())},
                        {"id", std::to_string(alloc.id)}});
        }
        unit.allocated -= alloc.amount;
        unit.allocated = unit.allocated.clamped_non_negative();
        unit.allocations.erase(unit.allocations.begin() +
                               static_cast<std::ptrdiff_t>(a));
      }
    }

    // Phase 4 — metric accounting: the actual load materializes; score the
    // step (globally and per game).
    const obs::PhaseScope account_scope(rec, "account", t);
    StepMetrics step_metrics;
    step_metrics.machines = total_groups;
    std::vector<StepMetrics> per_game(config.games.size());
    for (auto& unit : units) {
      const auto& load = config.games[unit.game_id].load;
      util::ResourceVector lambda{};
      for (auto& stream : unit.groups) {
        const double actual = (*stream.players)[t];
        lambda += load.demand(actual);
        if (stream.predictor) {
          constexpr double kErrorEwmaAlpha = 0.05;
          stream.abs_error_ewma =
              (1.0 - kErrorEwmaAlpha) * stream.abs_error_ewma +
              kErrorEwmaAlpha * std::abs(actual - stream.last_prediction);
          stream.predictor->observe(actual);
        }
      }
      // Only allocations past their setup delay serve load.
      util::ResourceVector usable = unit.allocated;
      if (config.provisioning_delay_steps > 0) {
        usable = {};
        for (const auto& alloc : unit.allocations) {
          if (alloc.usable_at(t)) usable += alloc.amount;
        }
      }
      step_metrics.allocated += usable;
      step_metrics.used += lambda;
      auto& game_step = per_game[unit.game_id];
      game_step.allocated += usable;
      game_step.used += lambda;
      game_step.machines += unit.groups.size();
      for (std::size_t i = 0; i < util::kResourceKinds; ++i) {
        const double short_i = std::min(usable.v[i] - lambda.v[i], 0.0);
        step_metrics.shortfall.v[i] += short_i;
        game_step.shortfall.v[i] += short_i;
      }
    }
    if (rec &&
        step_metrics.significant_under_allocation(config.event_threshold_pct)) {
      rec->count("event.under_allocation");
      rec->instant(
          "event.under_allocation", "event", t,
          {{"under_pct",
            std::to_string(
                step_metrics.under_allocation_pct(util::ResourceKind::kCpu))}});
    }
    result.metrics.add(step_metrics);
    if (result.games.empty()) {
      result.games.resize(config.games.size());
      for (std::size_t g = 0; g < config.games.size(); ++g) {
        result.games[g].name = config.games[g].name;
      }
    }
    for (std::size_t g = 0; g < config.games.size(); ++g) {
      result.games[g].metrics.add(per_game[g]);
    }

    for (std::size_t d = 0; d < ledgers.size(); ++d) {
      const double cpu = ledgers[d].in_use().cpu();
      dc_cpu_sum[d] += cpu;
      dc_cpu_peak[d] = std::max(dc_cpu_peak[d], cpu);
      result.total_cost += cpu *
                           ledgers[d].spec().policy.cpu_unit_price_per_hour *
                           (util::kSampleStepSeconds / 3600.0);
    }
    for (const auto& unit : units) {
      for (const auto& alloc : unit.allocations) {
        dc_origin_sum[alloc.dc_index][unit.region_name] += alloc.amount.cpu();
      }
    }
  }

  result.datacenters.reserve(ledgers.size());
  for (std::size_t d = 0; d < ledgers.size(); ++d) {
    DataCenterUsage usage;
    usage.name = ledgers[d].spec().name;
    usage.capacity_cpu = ledgers[d].spec().total_capacity().cpu();
    usage.avg_allocated_cpu = dc_cpu_sum[d] / static_cast<double>(steps);
    usage.peak_allocated_cpu = dc_cpu_peak[d];
    for (const auto& [origin, sum] : dc_origin_sum[d]) {
      usage.avg_allocated_by_origin[origin] =
          sum / static_cast<double>(steps);
    }
    result.datacenters.push_back(std::move(usage));
  }
  return result;
}

predict::PredictorFactory neural_factory_from_workload(
    const trace::WorldTrace& workload, std::size_t lead_in_steps,
    predict::NeuralConfig config, std::size_t max_training_groups) {
  std::vector<util::TimeSeries> histories;
  for (const auto& region : workload.regions) {
    for (const auto& group : region.groups) {
      if (histories.size() >= max_training_groups) break;
      histories.push_back(group.players.slice(0, lead_in_steps));
    }
    if (histories.size() >= max_training_groups) break;
  }
  if (histories.empty()) {
    throw std::invalid_argument(
        "neural_factory_from_workload: empty workload");
  }
  auto model = std::make_shared<const predict::NeuralModel>(
      predict::NeuralModel::fit(config, histories));
  return [model] {
    return std::make_unique<predict::NeuralPredictor>(model);
  };
}

}  // namespace mmog::core
