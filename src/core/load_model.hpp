#pragma once

#include <string_view>

#include "util/units.hpp"

namespace mmog::core {

/// The paper's entity-update cost models (§II-A): how the per-step world
/// update cost scales with the number n of interacting entities. The model
/// is a property of the game's design (interaction type and count).
enum class UpdateModel {
  kLinear,         ///< O(n): mostly solitary players
  kNLogN,          ///< O(n log n): pairwise interaction + area of interest
  kQuadratic,      ///< O(n^2): many individually interacting players
  kQuadraticLogN,  ///< O(n^2 log n): group interaction + area of interest
  kCubic,          ///< O(n^3): many interacting groups
};

inline constexpr std::size_t kUpdateModelCount = 5;

std::string_view update_model_name(UpdateModel m) noexcept;

/// Raw (unnormalized) update cost g(n) of the model.
double update_cost(UpdateModel m, double n) noexcept;

/// The area-of-interest optimization (§II-A): games that only update each
/// avatar's area of interest reduce O(n^2) to O(n log n) and O(n^3) to
/// O(n^2 log n). Models without a cheaper form are returned unchanged.
UpdateModel with_area_of_interest(UpdateModel m) noexcept;

/// Converts a server group's concurrent player count into a resource demand
/// in abstract units (§V-A: 1 unit of each resource = the requirement of a
/// fully loaded reference game server of `reference_players` clients).
///
/// CPU scales with the update model, normalized so that a full group needs
/// exactly 1.0 CPU units; memory and network scale linearly with players.
struct LoadModel {
  UpdateModel model = UpdateModel::kQuadratic;
  double reference_players = 2000.0;

  /// Demand vector for `players` concurrent players (clamped at >= 0).
  util::ResourceVector demand(double players) const noexcept;

  /// The CPU component alone (normalized update cost).
  double cpu_demand(double players) const noexcept;
};

}  // namespace mmog::core
