#pragma once

#include <map>
#include <string>

#include "core/simulation.hpp"
#include "obs/report.hpp"

namespace mmog::core {

/// Builds the canonical obs::RunReport for one finished simulate() call:
/// the outcome-determining knobs of `config` become the report's config
/// map (fingerprint input), the SimulationResult and the recorder's
/// registry supply the outcome section, and the `phase.*_us` histograms
/// become the timing quantiles. `extra_config` lets the CLI add its own
/// outcome-determining inputs (workload file, predictor name, fault spec,
/// seeds); entries there win over the derived ones on key collision.
///
/// `config.threads` deliberately stays OUT of the config map: the thread
/// count must not change the outcome, so it is reported in the timing
/// section instead — two same-seed runs at --threads 1 and --threads 4
/// produce reports whose config/fingerprint and outcome sections are
/// byte-identical.
obs::RunReport make_run_report(
    const SimulationConfig& config, const SimulationResult& result,
    std::string tool, std::string label, double wall_seconds,
    std::map<std::string, std::string> extra_config = {});

}  // namespace mmog::core
