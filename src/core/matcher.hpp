#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dc/datacenter.hpp"
#include "dc/ecosystem.hpp"
#include "dc/geo.hpp"

namespace mmog::core {

/// The request-offer matching mechanism of §II-C. Given a demand origin and
/// the game's latency tolerance it produces the ordered list of candidate
/// data centers:
///   1. only data centers within the tolerance distance are eligible;
///   2. eligible centers are ranked finer-grained-first and
///      shorter-time-bulk-first (the criteria that let game operators
///      penalize unsuitable hosting policies, §V-D/§V-E);
///   3. distance breaks remaining ties (closest first).
class Matcher {
 public:
  explicit Matcher(std::span<const dc::DataCenterSpec> datacenters);

  /// Ordered candidate data-center indices for a request originating at
  /// `origin` under the given latency tolerance. Deterministic.
  std::vector<std::size_t> candidates(const dc::GeoPoint& origin,
                                      dc::DistanceClass tolerance) const;

  /// Distance in km between an origin and data center `dc_index`.
  double distance_km(const dc::GeoPoint& origin, std::size_t dc_index) const;

  std::size_t datacenter_count() const noexcept { return specs_.size(); }
  const dc::DataCenterSpec& spec(std::size_t i) const { return specs_[i]; }

 private:
  std::vector<dc::DataCenterSpec> specs_;
};

}  // namespace mmog::core
