#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "dc/datacenter.hpp"
#include "util/units.hpp"

namespace mmog::core {

/// Arena-backed struct-of-arrays pool of live dc::Allocation records
/// (the lockstep/sim_region arena idiom): instead of one std::vector per
/// demand unit — whose middle erase() shifts every later record and whose
/// growth reallocates mid-step — every allocation in the run lives in a
/// slot of a fixed-capacity slab, and each unit owns a doubly linked list
/// of slot indices. Acquire appends at the tail, erase unlinks in O(1) and
/// pushes the slot onto a free list for recycling, so the steady state of
/// the match/replace hot path performs zero heap allocations. Slabs are
/// never moved or freed while the pool lives, so slot indices stay stable
/// across growth (growth adds a slab; it is rare and amortized).
///
/// List order is insertion order, exactly like the vector it replaces:
/// to_vector() reproduces the historical per-unit vector byte for byte,
/// which is what keeps checkpoints and audit walks identical.
class AllocPool {
 public:
  using Index = std::uint32_t;
  static constexpr Index kNil = 0xFFFFFFFFu;
  static constexpr std::size_t kSlabSlots = 1024;

  /// One unit's allocation list: indices into the shared pool, in
  /// insertion order. Value-semantic and trivially checkpointable — the
  /// records themselves live in the pool.
  struct List {
    Index head = kNil;
    Index tail = kNil;
    std::uint32_t size = 0;
    bool empty() const noexcept { return size == 0; }
  };

  AllocPool() = default;
  /// Pre-carves enough slabs for `capacity_hint` live slots.
  explicit AllocPool(std::size_t capacity_hint) { reserve(capacity_hint); }

  AllocPool(const AllocPool&) = delete;
  AllocPool& operator=(const AllocPool&) = delete;

  /// Ensures at least `n` slots exist (live + free) without growing later.
  void reserve(std::size_t n);

  // mmog-lint: hot-begin(alloc-pool)

  /// Appends a record at the tail of `list`, returning its slot.
  Index acquire(List& list, const dc::Allocation& a) {
    const Index i = free_head_ != kNil ? pop_free() : carve_slot();
    Slab& s = *slabs_[i >> kSlabShift];
    const std::size_t o = i & kSlabMask;
    s.id[o] = a.id;
    s.dc_index[o] = static_cast<std::uint32_t>(a.dc_index);
    s.game_id[o] = static_cast<std::uint32_t>(a.game_id);
    s.group_id[o] = a.group_id;
    s.region_id[o] = a.region_id;
    s.amount[o] = a.amount;
    s.start_step[o] = a.start_step;
    s.usable_step[o] = a.usable_step;
    s.release_step[o] = a.earliest_release_step;
    s.next[o] = kNil;
    s.prev[o] = list.tail;
    if (list.tail != kNil) {
      slab_of(list.tail).next[list.tail & kSlabMask] = i;
    } else {
      list.head = i;
    }
    list.tail = i;
    ++list.size;
    ++live_;
    return i;
  }

  /// Unlinks slot `i` from `list` and recycles it.
  void erase(List& list, Index i) {
    assert(list.size > 0);
    Slab& s = slab_of(i);
    const std::size_t o = i & kSlabMask;
    const Index p = s.prev[o];
    const Index n = s.next[o];
    if (p != kNil) {
      slab_of(p).next[p & kSlabMask] = n;
    } else {
      list.head = n;
    }
    if (n != kNil) {
      slab_of(n).prev[n & kSlabMask] = p;
    } else {
      list.tail = p;
    }
    --list.size;
    --live_;
    push_free(i);
  }

  std::size_t id(Index i) const { return field(i).id[i & kSlabMask]; }
  std::size_t dc_index(Index i) const {
    return field(i).dc_index[i & kSlabMask];
  }
  std::size_t game_id(Index i) const { return field(i).game_id[i & kSlabMask]; }
  const util::ResourceVector& amount(Index i) const {
    return field(i).amount[i & kSlabMask];
  }
  bool releasable_at(Index i, std::size_t step) const {
    return step >= field(i).release_step[i & kSlabMask];
  }
  bool usable_at(Index i, std::size_t step) const {
    return step >= field(i).usable_step[i & kSlabMask];
  }
  Index next(Index i) const { return field(i).next[i & kSlabMask]; }
  Index prev(Index i) const { return field(i).prev[i & kSlabMask]; }

  /// Canonical conservation sum: the amounts of `list` added in insertion
  /// order — the exact value `unit.allocated` must equal at all times.
  util::ResourceVector sum_amounts(const List& list) const {
    util::ResourceVector sum{};
    for (Index i = list.head; i != kNil; i = next(i)) sum += amount(i);
    return sum;
  }

  // mmog-lint: hot-end

  /// Materializes slot `i` back into the plain record (cold paths only).
  dc::Allocation get(Index i) const {
    const Slab& s = field(i);
    const std::size_t o = i & kSlabMask;
    dc::Allocation a;
    a.id = s.id[o];
    a.dc_index = s.dc_index[o];
    a.game_id = s.game_id[o];
    a.group_id = s.group_id[o];
    a.region_id = s.region_id[o];
    a.amount = s.amount[o];
    a.start_step = s.start_step[o];
    a.usable_step = s.usable_step[o];
    a.earliest_release_step = s.release_step[o];
    return a;
  }

  /// The list as the historical per-unit vector (checkpoint capture).
  std::vector<dc::Allocation> to_vector(const List& list) const;

  /// Replaces `list`'s contents with `records` (checkpoint restore).
  void assign(List& list, const std::vector<dc::Allocation>& records);

  /// Live slots across all lists.
  std::size_t live() const noexcept { return live_; }
  /// Total slots carved so far (live + recycled).
  std::size_t capacity() const noexcept { return slabs_.size() * kSlabSlots; }
  std::size_t slab_count() const noexcept { return slabs_.size(); }

 private:
  static constexpr std::size_t kSlabShift = 10;
  static constexpr std::size_t kSlabMask = kSlabSlots - 1;
  static_assert((std::size_t{1} << kSlabShift) == kSlabSlots);

  struct Slab {
    std::uint64_t id[kSlabSlots];
    std::uint64_t group_id[kSlabSlots];
    std::uint64_t region_id[kSlabSlots];
    std::uint64_t start_step[kSlabSlots];
    std::uint64_t usable_step[kSlabSlots];
    std::uint64_t release_step[kSlabSlots];
    util::ResourceVector amount[kSlabSlots];
    std::uint32_t dc_index[kSlabSlots];
    std::uint32_t game_id[kSlabSlots];
    Index next[kSlabSlots];
    Index prev[kSlabSlots];
  };

  Slab& slab_of(Index i) { return *slabs_[i >> kSlabShift]; }
  const Slab& field(Index i) const { return *slabs_[i >> kSlabShift]; }

  Index pop_free() {
    const Index i = free_head_;
    free_head_ = slab_of(i).next[i & kSlabMask];
    return i;
  }
  void push_free(Index i) {
    slab_of(i).next[i & kSlabMask] = free_head_;
    free_head_ = i;
  }
  Index carve_slot();

  std::vector<std::unique_ptr<Slab>> slabs_;
  Index free_head_ = kNil;
  std::size_t carved_ = 0;  ///< slots handed out at least once
  std::size_t live_ = 0;
};

}  // namespace mmog::core
