#include "core/run_report.hpp"

#include <string_view>
#include <utility>

#include "obs/jsonio.hpp"
#include "obs/recorder.hpp"

namespace mmog::core {
namespace {

/// Extracts "<name>" from a histogram called "phase.<name>_us"; empty
/// string_view when the name has another shape.
std::string_view phase_name(std::string_view histogram) {
  constexpr std::string_view kPrefix = "phase.";
  constexpr std::string_view kSuffix = "_us";
  if (histogram.size() <= kPrefix.size() + kSuffix.size() ||
      histogram.substr(0, kPrefix.size()) != kPrefix ||
      histogram.substr(histogram.size() - kSuffix.size()) != kSuffix) {
    return {};
  }
  return histogram.substr(kPrefix.size(),
                          histogram.size() - kPrefix.size() - kSuffix.size());
}

}  // namespace

obs::RunReport make_run_report(
    const SimulationConfig& config, const SimulationResult& result,
    std::string tool, std::string label, double wall_seconds,
    std::map<std::string, std::string> extra_config) {
  obs::RunReport report;
  report.tool = std::move(tool);
  report.label = std::move(label);

  auto& conf = report.config;
  conf["mode"] =
      config.mode == AllocationMode::kStatic ? "static" : "dynamic";
  conf["steps"] = std::to_string(config.steps);
  conf["safety_factor"] = obs::json_double(config.safety_factor);
  conf["event_threshold_pct"] = obs::json_double(config.event_threshold_pct);
  conf["provisioning_delay_steps"] =
      std::to_string(config.provisioning_delay_steps);
  conf["prioritize_by_interaction"] =
      config.prioritize_by_interaction ? "true" : "false";
  conf["games"] = std::to_string(config.games.size());
  conf["datacenters"] = std::to_string(config.datacenters.size());
  conf["faults"] = std::to_string(config.faults.size());
  conf["outages"] = std::to_string(config.outages.size());
  conf["resilience.enabled"] = config.resilience.enabled ? "true" : "false";
  conf["resilience.base_backoff_steps"] =
      std::to_string(config.resilience.base_backoff_steps);
  conf["resilience.max_backoff_steps"] =
      std::to_string(config.resilience.max_backoff_steps);
  conf["resilience.standby_reserve_servers"] =
      obs::json_double(config.resilience.standby_reserve_servers);
  conf["resilience.shed_low_priority"] =
      config.resilience.shed_low_priority ? "true" : "false";
  for (auto& [key, value] : extra_config) {
    conf[key] = std::move(value);
  }

  auto& outcome = report.outcome;
  outcome.steps = result.steps;
  outcome.over_allocation_pct =
      result.metrics.avg_over_allocation_pct(util::ResourceKind::kCpu);
  outcome.under_allocation_pct =
      result.metrics.avg_under_allocation_pct(util::ResourceKind::kCpu);
  outcome.significant_events =
      result.metrics.significant_events(config.event_threshold_pct);
  outcome.unplaced_cpu_unit_steps = result.unplaced_cpu_unit_steps;
  outcome.total_cost = result.total_cost;
  outcome.fault_windows = result.fault_events.size();
  outcome.availability_pct = result.sla.availability_pct();
  outcome.sla_steps = result.sla.steps;
  outcome.downtime_steps = result.sla.downtime_steps;
  outcome.shed_steps = result.sla.shed_steps;
  outcome.breach_episodes = result.sla.breach_episodes;
  outcome.longest_breach_steps = result.sla.longest_breach_steps;
  outcome.recoveries = result.sla.recoveries;
  outcome.mean_time_to_recover_steps = result.sla.mean_time_to_recover_steps;
  outcome.max_time_to_recover_steps = result.sla.max_time_to_recover_steps;

  report.threads = config.threads;
  report.wall_seconds = wall_seconds;
  report.peak_rss_kb = obs::current_peak_rss_kb();
  if (wall_seconds > 0.0) {
    report.steps_per_sec = static_cast<double>(result.steps) / wall_seconds;
  }

  const obs::Recorder* const rec = config.recorder;
  if (rec == nullptr) return report;

  if (const obs::AlertEngine* engine = rec->alerts()) {
    for (const auto& status : engine->statuses()) {
      outcome.alerts_fired += status.fired_count;
      outcome.alerts_resolved += status.resolved_count;
      if (status.state == obs::AlertState::kFiring) ++outcome.alerts_firing;
    }
  }
  if (const obs::AuditTrail* trail = rec->audit()) {
    outcome.audit_records = trail->size();
  }

  const obs::Snapshot snap = rec->snapshot();
  outcome.counters = snap.counters;
  // The actually-used predict worker count (0 resolves to the hardware
  // concurrency inside simulate(), so config.threads may understate it).
  if (const auto it = snap.gauges.find("sim.predict_threads");
      it != snap.gauges.end() && it->second >= 1.0) {
    report.threads = static_cast<std::uint64_t>(it->second);
  }
  // The profiler's throughput gauge measures the step loop alone (no
  // trace generation or predictor training), so prefer it to steps/wall.
  if (const auto it = snap.gauges.find("sim.steps_per_sec");
      it != snap.gauges.end() && it->second > 0.0) {
    report.steps_per_sec = it->second;
  }
  for (const auto& [name, hist] : snap.histograms) {
    const std::string_view phase = phase_name(name);
    if (phase.empty() || hist.count == 0) continue;
    obs::RunReport::PhaseStats stats;
    stats.name = std::string(phase);
    stats.count = hist.count;
    stats.mean_us = hist.mean();
    stats.p50_us = hist.quantile(0.5);
    stats.p90_us = hist.quantile(0.9);
    stats.p99_us = hist.quantile(0.99);
    stats.max_us = hist.max;
    // Join the profiler's allocation histograms (absent without an
    // attached ResourceProfiler — the means default to zero).
    if (const auto ha =
            snap.histograms.find("phase." + stats.name + "_allocs");
        ha != snap.histograms.end() && ha->second.count > 0) {
      stats.allocs_mean = ha->second.mean();
    }
    if (const auto hb =
            snap.histograms.find("phase." + stats.name + "_alloc_bytes");
        hb != snap.histograms.end() && hb->second.count > 0) {
      stats.alloc_bytes_mean = hb->second.mean();
    }
    report.phases.push_back(std::move(stats));
  }
  return report;
}

}  // namespace mmog::core
