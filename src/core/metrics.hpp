#pragma once

#include <cstddef>
#include <vector>

#include "util/units.hpp"

namespace mmog::core {

/// Resource-allocation quality at one 2-minute sample (§V, Eqs. 1-2).
///
/// Over-allocation Ω reports the *excess* percentage: Eq. 1 computes
/// Σα/Σλ·100, which is 100 % at a perfect fit; the paper's tables and plots
/// report the surplus above that (dynamic allocation averages ≈ 25 %, not
/// 125 %), so over_allocation_pct() returns (Σα/Σλ − 1)·100.
///
/// Under-allocation Υ (Eq. 2) is Σ min(α_m − λ_m, 0) / M · 100: the average
/// per-machine shortfall, at most 0. Over-allocation on one machine never
/// offsets under-allocation on another, so the two metrics are not
/// correlated by construction.
struct StepMetrics {
  util::ResourceVector allocated{};  ///< Σ α_m(t)
  util::ResourceVector used{};       ///< Σ λ_m(t)
  util::ResourceVector shortfall{};  ///< Σ min(α_m − λ_m, 0)  (<= 0)
  std::size_t machines = 0;          ///< M

  /// Excess allocation percentage for one resource (0 when unused).
  double over_allocation_pct(util::ResourceKind k) const noexcept;

  /// Under-allocation percentage (<= 0) for one resource.
  double under_allocation_pct(util::ResourceKind k) const noexcept;

  /// A *significant under-allocation event* (§V): |Υ| exceeds `threshold`
  /// percent on the CPU resource at this (2-minute) sample — long enough to
  /// frustrate players.
  bool significant_under_allocation(double threshold_pct = 1.0) const noexcept;
};

/// Aggregates step metrics over a simulation run.
class MetricsAccumulator {
 public:
  void add(const StepMetrics& step);

  std::size_t steps() const noexcept { return steps_.size(); }
  const std::vector<StepMetrics>& step_metrics() const noexcept {
    return steps_;
  }

  /// Mean of the per-step over-allocation percentages.
  double avg_over_allocation_pct(util::ResourceKind k) const noexcept;

  /// Mean of the per-step under-allocation percentages (<= 0).
  double avg_under_allocation_pct(util::ResourceKind k) const noexcept;

  /// Total significant under-allocation events (|Υ| > threshold on CPU).
  std::size_t significant_events(double threshold_pct = 1.0) const noexcept;

  /// Cumulative significant-event count after each step (Figs 7 and 10).
  std::vector<std::size_t> cumulative_events(
      double threshold_pct = 1.0) const;

 private:
  std::vector<StepMetrics> steps_;
};

/// Service-level outcome of one run (globally or restricted to one game),
/// derived from the per-step breach signal |Υ| > threshold. A *breach
/// episode* is a maximal run of consecutive breached steps; its length is
/// the observed time-to-recover. Fault-injection runs read availability and
/// recovery figures from here (§V's "re-place within one step" claim).
struct SlaStats {
  std::size_t steps = 0;           ///< observed steps
  std::size_t downtime_steps = 0;  ///< steps with |Υ| above the threshold
  std::size_t shed_steps = 0;      ///< steps this game was degraded on purpose
  std::size_t breach_episodes = 0; ///< maximal breach streaks started
  std::size_t recoveries = 0;      ///< episodes that ended within the run
  std::size_t longest_breach_steps = 0;
  /// Mean/max length of *ended* episodes (0 when none ended).
  double mean_time_to_recover_steps = 0.0;
  std::size_t max_time_to_recover_steps = 0;

  /// Fraction of steps meeting the SLA, in percent (100 when never down).
  double availability_pct() const noexcept;
};

/// Streaming accumulator for SlaStats: feed one breach observation per
/// step; stats() may be taken at any point (an episode still open at the
/// end counts toward downtime and longest-streak, not recoveries).
class SlaTracker {
 public:
  enum class Transition { kNone, kBreachBegan, kRecovered };

  /// The tracker's complete internal state, exposed for checkpointing.
  /// `stats` here is the *raw* accumulator (mean_time_to_recover_steps
  /// unset), unlike stats() which derives the mean on read.
  struct State {
    SlaStats stats;
    std::size_t streak = 0;
    double recovered_steps_sum = 0.0;
  };

  /// Records one step; `shed` marks deliberate degradation (the resilience
  /// policy sacrificing this game for a higher-priority one).
  Transition observe(bool breached, bool shed = false);

  SlaStats stats() const noexcept;

  State state() const noexcept { return {s_, streak_, recovered_steps_sum_}; }
  void restore(const State& state) noexcept {
    s_ = state.stats;
    streak_ = state.streak;
    recovered_steps_sum_ = state.recovered_steps_sum;
  }

 private:
  SlaStats s_;
  std::size_t streak_ = 0;
  double recovered_steps_sum_ = 0.0;
};

}  // namespace mmog::core
