#include "core/partition.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace mmog::core {

ZoneGraph ZoneGraph::from_grid(std::span<const double> zone_loads,
                               std::size_t width, std::size_t height) {
  if (zone_loads.size() != width * height) {
    throw std::invalid_argument("ZoneGraph::from_grid: size mismatch");
  }
  ZoneGraph g;
  g.load.assign(zone_loads.begin(), zone_loads.end());
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      const std::size_t z = y * width + x;
      if (x + 1 < width) {
        const std::size_t r = z + 1;
        const double w = std::sqrt(std::max(0.0, g.load[z] * g.load[r]));
        if (w > 0.0) g.edges.push_back({z, r, w});
      }
      if (y + 1 < height) {
        const std::size_t d = z + width;
        const double w = std::sqrt(std::max(0.0, g.load[z] * g.load[d]));
        if (w > 0.0) g.edges.push_back({z, d, w});
      }
    }
  }
  return g;
}

std::size_t Partition::server_count() const noexcept {
  std::size_t n = 0;
  for (const auto& s : servers) {
    if (!s.empty()) ++n;
  }
  return n;
}

PartitionCost evaluate_partition(const ZoneGraph& graph,
                                 const Partition& partition,
                                 double server_capacity) {
  std::vector<std::size_t> owner(graph.zone_count(), SIZE_MAX);
  for (std::size_t s = 0; s < partition.servers.size(); ++s) {
    for (std::size_t z : partition.servers[s]) {
      if (z >= graph.zone_count() || owner[z] != SIZE_MAX) {
        throw std::invalid_argument(
            "evaluate_partition: duplicate or out-of-range zone");
      }
      owner[z] = s;
    }
  }
  for (std::size_t z = 0; z < owner.size(); ++z) {
    if (owner[z] == SIZE_MAX) {
      throw std::invalid_argument("evaluate_partition: unassigned zone");
    }
  }
  PartitionCost cost;
  for (const auto& server : partition.servers) {
    double load = 0.0;
    for (std::size_t z : server) load += graph.load[z];
    cost.max_load = std::max(cost.max_load, load);
    if (load > server_capacity + 1e-9) ++cost.overloaded;
  }
  for (const auto& e : graph.edges) {
    if (owner[e.a] != owner[e.b]) cost.cut_weight += e.weight;
  }
  return cost;
}

std::string_view partition_strategy_name(PartitionStrategy s) noexcept {
  switch (s) {
    case PartitionStrategy::kRoundRobin: return "round-robin";
    case PartitionStrategy::kGreedyLoad: return "greedy-load";
    case PartitionStrategy::kAffinity: return "affinity";
  }
  return "?";
}

namespace {

Partition round_robin(const ZoneGraph& graph, double capacity) {
  // Estimate the server count from the total load, then stripe.
  const double total =
      std::accumulate(graph.load.begin(), graph.load.end(), 0.0);
  const auto servers = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(total / capacity)));
  Partition p;
  p.servers.resize(servers);
  for (std::size_t z = 0; z < graph.zone_count(); ++z) {
    p.servers[z % servers].push_back(z);
  }
  return p;
}

Partition greedy_load(const ZoneGraph& graph, double capacity) {
  std::vector<std::size_t> order(graph.zone_count());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return graph.load[a] > graph.load[b];
  });
  Partition p;
  std::vector<double> loads;
  for (std::size_t z : order) {
    // First fit: the first server with room; a fresh one otherwise.
    std::size_t target = p.servers.size();
    for (std::size_t s = 0; s < p.servers.size(); ++s) {
      if (loads[s] + graph.load[z] <= capacity + 1e-9) {
        target = s;
        break;
      }
    }
    if (target == p.servers.size()) {
      p.servers.emplace_back();
      loads.push_back(0.0);
    }
    p.servers[target].push_back(z);
    loads[target] += graph.load[z];
  }
  return p;
}

void affinity_local_search(const ZoneGraph& graph, double capacity,
                           Partition& p) {
  std::vector<std::size_t> owner(graph.zone_count(), 0);
  std::vector<double> loads(p.servers.size(), 0.0);
  for (std::size_t s = 0; s < p.servers.size(); ++s) {
    for (std::size_t z : p.servers[s]) {
      owner[z] = s;
      loads[s] += graph.load[z];
    }
  }
  // Adjacency with weights per zone.
  std::vector<std::vector<ZoneGraph::Edge>> adj(graph.zone_count());
  for (const auto& e : graph.edges) {
    adj[e.a].push_back(e);
    adj[e.b].push_back({e.b, e.a, e.weight});
  }

  bool improved = true;
  for (int pass = 0; pass < 8 && improved; ++pass) {
    improved = false;
    for (std::size_t z = 0; z < graph.zone_count(); ++z) {
      // Gain of moving z to each neighbouring server.
      std::vector<double> gain(p.servers.size(), 0.0);
      double here = 0.0;
      for (const auto& e : adj[z]) {
        const std::size_t other = owner[e.b];
        if (other == owner[z]) {
          here += e.weight;  // weight lost if z leaves
        } else {
          gain[other] += e.weight;  // weight recovered if z joins
        }
      }
      std::size_t best = owner[z];
      double best_gain = 0.0;
      for (std::size_t s = 0; s < p.servers.size(); ++s) {
        if (s == owner[z]) continue;
        if (loads[s] + graph.load[z] > capacity + 1e-9) continue;
        const double g = gain[s] - here;
        if (g > best_gain + 1e-12) {
          best_gain = g;
          best = s;
        }
      }
      if (best != owner[z]) {
        loads[owner[z]] -= graph.load[z];
        loads[best] += graph.load[z];
        owner[z] = best;
        improved = true;
      }
    }
  }
  for (auto& s : p.servers) s.clear();
  for (std::size_t z = 0; z < graph.zone_count(); ++z) {
    p.servers[owner[z]].push_back(z);
  }
}

}  // namespace

Partition partition_zones(const ZoneGraph& graph, double server_capacity,
                          PartitionStrategy strategy, obs::Recorder* recorder,
                          std::size_t step) {
  if (graph.zone_count() == 0) {
    throw std::invalid_argument("partition_zones: empty graph");
  }
  if (server_capacity <= 0.0) {
    throw std::invalid_argument("partition_zones: non-positive capacity");
  }
  const obs::PhaseScope scope(recorder, "partition", step);
  switch (strategy) {
    case PartitionStrategy::kRoundRobin:
      return round_robin(graph, server_capacity);
    case PartitionStrategy::kGreedyLoad:
      return greedy_load(graph, server_capacity);
    case PartitionStrategy::kAffinity: {
      auto p = greedy_load(graph, server_capacity);
      affinity_local_search(graph, server_capacity, p);
      return p;
    }
  }
  return greedy_load(graph, server_capacity);
}

}  // namespace mmog::core
