#include "core/metrics.hpp"

namespace mmog::core {

double StepMetrics::over_allocation_pct(util::ResourceKind k) const noexcept {
  const double lambda = used[k];
  if (lambda <= 0.0) return 0.0;
  return (allocated[k] / lambda - 1.0) * 100.0;
}

double StepMetrics::under_allocation_pct(util::ResourceKind k) const noexcept {
  if (machines == 0) return 0.0;
  return shortfall[k] / static_cast<double>(machines) * 100.0;
}

bool StepMetrics::significant_under_allocation(
    double threshold_pct) const noexcept {
  return under_allocation_pct(util::ResourceKind::kCpu) < -threshold_pct;
}

void MetricsAccumulator::add(const StepMetrics& step) {
  steps_.push_back(step);
}

double MetricsAccumulator::avg_over_allocation_pct(
    util::ResourceKind k) const noexcept {
  if (steps_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& m : steps_) s += m.over_allocation_pct(k);
  return s / static_cast<double>(steps_.size());
}

double MetricsAccumulator::avg_under_allocation_pct(
    util::ResourceKind k) const noexcept {
  if (steps_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& m : steps_) s += m.under_allocation_pct(k);
  return s / static_cast<double>(steps_.size());
}

std::size_t MetricsAccumulator::significant_events(
    double threshold_pct) const noexcept {
  std::size_t n = 0;
  for (const auto& m : steps_) {
    if (m.significant_under_allocation(threshold_pct)) ++n;
  }
  return n;
}

std::vector<std::size_t> MetricsAccumulator::cumulative_events(
    double threshold_pct) const {
  std::vector<std::size_t> out;
  out.reserve(steps_.size());
  std::size_t n = 0;
  for (const auto& m : steps_) {
    if (m.significant_under_allocation(threshold_pct)) ++n;
    out.push_back(n);
  }
  return out;
}

}  // namespace mmog::core
