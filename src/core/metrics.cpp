#include "core/metrics.hpp"

#include <algorithm>

namespace mmog::core {

double StepMetrics::over_allocation_pct(util::ResourceKind k) const noexcept {
  const double lambda = used[k];
  if (lambda <= 0.0) return 0.0;
  return (allocated[k] / lambda - 1.0) * 100.0;
}

double StepMetrics::under_allocation_pct(util::ResourceKind k) const noexcept {
  if (machines == 0) return 0.0;
  return shortfall[k] / static_cast<double>(machines) * 100.0;
}

bool StepMetrics::significant_under_allocation(
    double threshold_pct) const noexcept {
  return under_allocation_pct(util::ResourceKind::kCpu) < -threshold_pct;
}

void MetricsAccumulator::add(const StepMetrics& step) {
  steps_.push_back(step);
}

double MetricsAccumulator::avg_over_allocation_pct(
    util::ResourceKind k) const noexcept {
  if (steps_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& m : steps_) s += m.over_allocation_pct(k);
  return s / static_cast<double>(steps_.size());
}

double MetricsAccumulator::avg_under_allocation_pct(
    util::ResourceKind k) const noexcept {
  if (steps_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& m : steps_) s += m.under_allocation_pct(k);
  return s / static_cast<double>(steps_.size());
}

std::size_t MetricsAccumulator::significant_events(
    double threshold_pct) const noexcept {
  std::size_t n = 0;
  for (const auto& m : steps_) {
    if (m.significant_under_allocation(threshold_pct)) ++n;
  }
  return n;
}

double SlaStats::availability_pct() const noexcept {
  if (steps == 0) return 100.0;
  return 100.0 *
         (1.0 - static_cast<double>(downtime_steps) /
                    static_cast<double>(steps));
}

SlaTracker::Transition SlaTracker::observe(bool breached, bool shed) {
  ++s_.steps;
  if (shed) ++s_.shed_steps;
  Transition transition = Transition::kNone;
  if (breached) {
    ++s_.downtime_steps;
    if (streak_ == 0) {
      ++s_.breach_episodes;
      transition = Transition::kBreachBegan;
    }
    ++streak_;
    s_.longest_breach_steps = std::max(s_.longest_breach_steps, streak_);
  } else if (streak_ > 0) {
    ++s_.recoveries;
    recovered_steps_sum_ += static_cast<double>(streak_);
    s_.max_time_to_recover_steps =
        std::max(s_.max_time_to_recover_steps, streak_);
    streak_ = 0;
    transition = Transition::kRecovered;
  }
  return transition;
}

SlaStats SlaTracker::stats() const noexcept {
  SlaStats out = s_;
  if (out.recoveries > 0) {
    out.mean_time_to_recover_steps =
        recovered_steps_sum_ / static_cast<double>(out.recoveries);
  }
  return out;
}

std::vector<std::size_t> MetricsAccumulator::cumulative_events(
    double threshold_pct) const {
  std::vector<std::size_t> out;
  out.reserve(steps_.size());
  std::size_t n = 0;
  for (const auto& m : steps_) {
    if (m.significant_under_allocation(threshold_pct)) ++n;
    out.push_back(n);
  }
  return out;
}

}  // namespace mmog::core
