#include "core/matcher.hpp"

#include <algorithm>

namespace mmog::core {

Matcher::Matcher(std::span<const dc::DataCenterSpec> datacenters)
    : specs_(datacenters.begin(), datacenters.end()) {}

double Matcher::distance_km(const dc::GeoPoint& origin,
                            std::size_t dc_index) const {
  return dc::haversine_km(origin, specs_[dc_index].location);
}

std::vector<std::size_t> Matcher::candidates(
    const dc::GeoPoint& origin, dc::DistanceClass tolerance) const {
  struct Entry {
    std::size_t index;
    dc::GranularityKey grain;
    double distance;
  };
  std::vector<Entry> eligible;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const double d = distance_km(origin, i);
    if (!dc::within_tolerance(d, tolerance)) continue;
    eligible.push_back({i, specs_[i].policy.granularity_key(), d});
  }
  std::sort(eligible.begin(), eligible.end(), [](const Entry& a, const Entry& b) {
    if (a.grain != b.grain) return a.grain < b.grain;
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.index < b.index;
  });
  std::vector<std::size_t> out;
  out.reserve(eligible.size());
  for (const auto& e : eligible) out.push_back(e.index);
  return out;
}

}  // namespace mmog::core
