#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "dc/datacenter.hpp"
#include "fault/model.hpp"
#include "fault/resilience.hpp"
#include "obs/audit.hpp"
#include "util/units.hpp"

namespace mmog::core {

/// One server group's online-prediction state.
struct GroupCheckpoint {
  std::string predictor;      ///< Predictor::name(), verified on restore
  std::vector<double> state;  ///< Predictor::save_state payload
  double last_prediction = 0.0;
  double abs_error_ewma = 0.0;
};

/// One demand unit's holdings and retry bookkeeping.
struct UnitCheckpoint {
  std::size_t game_id = 0;
  std::string region;  ///< identity check against the rebuilt unit
  util::ResourceVector allocated{};
  std::vector<dc::Allocation> allocations;
  std::vector<fault::BackoffTracker::EntryView> backoff;
  std::vector<GroupCheckpoint> groups;
};

/// One data center's ledger plus its usage accumulators.
struct LedgerCheckpoint {
  util::ResourceVector in_use{};
  double capacity_fraction = 1.0;
  double cpu_sum = 0.0;   ///< Σ over completed steps of granted CPU
  double cpu_peak = 0.0;  ///< max over completed steps of granted CPU
  std::map<std::string, double> origin_sum;  ///< Σ granted CPU by region
};

/// The complete mutable state of core::simulate at a step boundary: every
/// loop-carried value the remaining steps depend on, plus the accumulators
/// that become the RunReport. The invariant this buys: restoring at any
/// step k and running to the end yields a result, report and audit trail
/// byte-identical to the uninterrupted run, at any thread count.
///
/// This is a plain data struct — serialization, checksums and file I/O
/// live in mmog::ckpt, which depends on core and not the other way around.
struct CheckpointState {
  std::size_t next_step = 0;  ///< steps [0, next_step) are complete
  std::size_t steps = 0;      ///< the run's resolved horizon
  std::size_t next_allocation_id = 1;
  double unplaced_cpu_unit_steps = 0.0;
  double total_cost = 0.0;
  /// The expanded fault schedule the producing run saw. Restore regenerates
  /// the schedule from its own config (expansion is deterministic) and
  /// refuses to resume when the two disagree — the cheap, complete guard
  /// against restoring under a divergent configuration.
  std::vector<fault::FaultEvent> fault_events;
  std::vector<LedgerCheckpoint> ledgers;
  std::vector<UnitCheckpoint> units;
  std::vector<StepMetrics> step_metrics;  ///< global accumulator content
  std::vector<std::vector<StepMetrics>> game_step_metrics;  ///< per game
  SlaTracker::State overall_sla;
  std::vector<SlaTracker::State> game_sla;
  /// Registry counter totals at the boundary. Restore applies the *delta*
  /// against the fresh process's counters, so counts emitted while
  /// rebuilding config-derived structures (unit-build offer rejections)
  /// are not double-applied.
  std::map<std::string, double> counters;
  /// Decision-audit prefix: every record of steps [0, next_step). Restore
  /// preloads the fresh trail with these, reproducing identical sequence
  /// numbers for the remaining steps' records.
  std::vector<obs::AuditRecord> audit_records;
};

}  // namespace mmog::core
