#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/load_model.hpp"
#include "core/matcher.hpp"
#include "core/metrics.hpp"
#include "dc/datacenter.hpp"
#include "dc/ecosystem.hpp"
#include "fault/model.hpp"
#include "fault/resilience.hpp"
#include "obs/recorder.hpp"
#include "predict/neural.hpp"
#include "predict/predictor.hpp"
#include "trace/trace.hpp"

namespace mmog::core {

/// Whether resources are provisioned once for the peak (the industry's
/// static practice) or adjusted every two minutes from predictions (§V).
enum class AllocationMode { kStatic, kDynamic };

/// One operated MMOG: its interaction/update model, latency tolerance and
/// player-count workload. Region names inside the workload must be known to
/// dc::region_site() so demand can be placed geographically.
struct GameSpec {
  std::string name = "MMOG";
  LoadModel load{};
  dc::DistanceClass latency_tolerance = dc::DistanceClass::kVeryFar;
  trace::WorldTrace workload;
  int priority = 0;  ///< larger = served first (the §VII future-work knob)
};

/// A data-center outage window for failure injection: during
/// [from_step, to_step) the center grants nothing and every allocation it
/// hosts is force-released (the operator must re-place that demand
/// elsewhere, within latency tolerance).
struct DataCenterOutage {
  std::size_t dc_index = 0;
  std::size_t from_step = 0;
  std::size_t to_step = 0;

  bool active_at(std::size_t step) const noexcept {
    return step >= from_step && step < to_step;
  }
};

/// Full experiment description for the trace-driven simulator.
struct SimulationConfig {
  std::vector<dc::DataCenterSpec> datacenters;
  std::vector<GameSpec> games;
  /// Hand-scheduled all-or-nothing outage windows (the original failure
  /// knob; kept for compatibility — internally folded into `faults`).
  std::vector<DataCenterOutage> outages;
  /// Stochastic/fixed fault processes (outages, capacity loss, latency
  /// degradation, grant flaps); expanded deterministically per seed over
  /// the run's horizon. Empty = today's fault-free behavior, bit-identical.
  std::vector<fault::FaultSpec> faults;
  /// Operator-side reaction to faults: same-step re-placement with
  /// exponential backoff + exclusion lists, optional N+k standby reserve,
  /// optional priority shedding. Disabled by default.
  fault::ResiliencePolicy resilience;
  AllocationMode mode = AllocationMode::kDynamic;
  /// Creates a fresh predictor per server group (dynamic mode only).
  predict::PredictorFactory predictor;
  /// Steps to simulate; 0 = the full workload length.
  std::size_t steps = 0;
  /// Worker threads for the per-step predict phase (§IV-B predicts every
  /// sub-zone independently, which makes the phase embarrassingly parallel
  /// and, per Fig. 6, the scaling bottleneck of the provisioning loop).
  /// 1 (the default) keeps the historical serial code path with no thread
  /// pool at all; 0 resolves to the hardware concurrency. Results are
  /// bit-identical for every thread count: workers write disjoint
  /// preallocated slots and the demand reduction stays serial in fixed
  /// index order.
  std::size_t threads = 1;
  /// Serve games in priority order within each step (extension; off
  /// reproduces the paper's first-come matching).
  bool prioritize_by_interaction = false;
  /// |Υ| threshold (percent) counting a significant under-allocation event.
  double event_threshold_pct = 1.0;
  /// Demand-estimation safety factor (§V-C: a mechanism that allocates more
  /// than the predicted volume). Each group's requested player count is its
  /// prediction plus `safety_factor` times an exponential moving average of
  /// that predictor's own absolute one-step error — so an accurate predictor
  /// earns a small cushion and a noisy one pays with over-allocation.
  double safety_factor = 0.5;
  /// Steps between granting an allocation and the resources serving load
  /// (game-server deployment, world-state transfer). The paper assumes zero
  /// overhead (§V); the setup-delay ablation quantifies that assumption.
  std::size_t provisioning_delay_steps = 0;
  /// Optional observability sink (not owned). When set, the simulator
  /// records per-phase duration histograms, offer/allocation counters and
  /// step spans; when null every instrumentation site short-circuits on a
  /// single pointer test. Event *content* stays deterministic for a fixed
  /// configuration; measured wall-clock durations are recorded values and
  /// never influence control flow.
  obs::Recorder* recorder = nullptr;
  /// Checkpointing: with a sink set, the simulator snapshots its complete
  /// mutable state after every `checkpoint_every_steps` completed steps
  /// (and, regardless of the interval, after the step a cooperative stop
  /// lands on) and hands the snapshot to the sink on the simulation
  /// thread. 0 disables periodic capture. Capture is observational: runs
  /// with and without a sink are bit-identical.
  std::size_t checkpoint_every_steps = 0;
  std::function<void(const CheckpointState&)> checkpoint_sink;
  /// Resume: when set, the run starts at `restore_from->next_step` with
  /// every loop-carried value overwritten from the snapshot instead of
  /// running steps from 0. The configuration must be the one that produced
  /// the snapshot — geometry and the expanded fault schedule are verified
  /// and a mismatch throws std::invalid_argument. Not owned; must outlive
  /// simulate().
  const CheckpointState* restore_from = nullptr;
  /// Cooperative stop (graceful shutdown): polled once per step boundary.
  /// When true the loop finishes the current step, emits a final
  /// checkpoint through the sink (if any), and returns the partial result
  /// with `interrupted` set. Not owned; may be flipped from a signal
  /// handler or another thread.
  const std::atomic<bool>* stop_flag = nullptr;
};

/// Aggregated per-data-center outcome.
struct DataCenterUsage {
  std::string name;
  double capacity_cpu = 0.0;
  double avg_allocated_cpu = 0.0;   ///< mean granted CPU units over the run
  double peak_allocated_cpu = 0.0;
  /// Mean granted CPU units split by the demand's origin region (Fig 14).
  std::map<std::string, double> avg_allocated_by_origin;
};

/// Per-game aggregated outcome (multi-MMOG runs, §V-F).
struct GameUsage {
  std::string name;
  MetricsAccumulator metrics;  ///< Ω/Υ restricted to this game's groups
  SlaStats sla;                ///< availability / recovery, this game only
};

/// Result of one simulation run.
struct SimulationResult {
  MetricsAccumulator metrics;
  std::vector<DataCenterUsage> datacenters;
  std::vector<GameUsage> games;
  std::size_t steps = 0;
  /// Demand (CPU unit-steps) that could not be placed anywhere in
  /// tolerance; contributes to under-allocation.
  double unplaced_cpu_unit_steps = 0.0;
  /// Total renting cost over the run: granted CPU units x hours x the
  /// serving policy's cpu_unit_price_per_hour.
  double total_cost = 0.0;
  /// Whole-run SLA outcome over the global breach signal.
  SlaStats sla;
  /// The concrete fault windows the run was exposed to (stochastic specs
  /// expanded, legacy outages folded in), sorted by start step.
  std::vector<fault::FaultEvent> fault_events;
  /// True when a cooperative stop ended the run early; `steps` then holds
  /// the number of steps actually completed.
  bool interrupted = false;
};

/// The resources one offer grants against `need` under `policy`, capped by
/// the data center's remaining capacity: whole bundles for the policy's
/// bulk-constrained resources (the hoster's quantum, §II-B) plus exact
/// amounts for the unconstrained ones. Exposed for testing; simulate() is
/// the production caller.
util::ResourceVector offer_amount(const util::ResourceVector& need,
                                  const util::ResourceVector& free,
                                  const dc::HostingPolicy& policy) noexcept;

/// Runs the trace-driven provisioning simulation (§V). Deterministic.
/// Throws std::invalid_argument for inconsistent configurations — no games,
/// missing predictor in dynamic mode, unknown region names, malformed
/// outage/fault windows (dc_index out of range, from_step >= to_step),
/// negative safety factor or event threshold.
SimulationResult simulate(const SimulationConfig& config);

/// Sentinel for recovery_lag_steps: the run ended still in breach.
inline constexpr std::size_t kNeverRecovered =
    static_cast<std::size_t>(-1);

/// For every fault window that ends inside the run, the number of steps
/// after the recovery until the |Υ| breach signal first clears (0 = the
/// first post-fault step already meets the SLA; kNeverRecovered = it never
/// does). The §V resilience claim is that this stays small and bounded for
/// dynamic provisioning while static allocation never recovers.
std::vector<std::size_t> recovery_lag_steps(
    const MetricsAccumulator& metrics,
    const std::vector<fault::FaultEvent>& events,
    double threshold_pct = 1.0);

/// Builds the paper's dynamic-provisioning predictor: fits a NeuralModel on
/// the first `lead_in_steps` of (a subsample of) the workload's group
/// series — the offline data-collection + training phases of §IV-C — and
/// returns a factory producing per-group online predictors sharing it.
predict::PredictorFactory neural_factory_from_workload(
    const trace::WorldTrace& workload, std::size_t lead_in_steps,
    predict::NeuralConfig config = {}, std::size_t max_training_groups = 8);

/// The training half of neural_factory_from_workload, exposed so tools can
/// serialize the shared model into checkpoints (NeuralModel::save) and
/// restore it without retraining.
std::shared_ptr<const predict::NeuralModel> neural_model_from_workload(
    const trace::WorldTrace& workload, std::size_t lead_in_steps,
    predict::NeuralConfig config = {}, std::size_t max_training_groups = 8);

/// The factory half: per-group online predictors sharing an already
/// trained (or deserialized) model.
predict::PredictorFactory neural_factory_from_model(
    std::shared_ptr<const predict::NeuralModel> model);

}  // namespace mmog::core
