#pragma once

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

#include "obs/recorder.hpp"

namespace mmog::core {

/// Zone-to-server partitioning (§II-A: operators distribute the load of a
/// game world across multiple computational resources). Zones carry a load
/// and pairwise interaction weights; placing interacting zones on different
/// servers costs cross-server synchronization bandwidth.
struct ZoneGraph {
  /// Per-zone load (e.g. normalized update cost of the zone's entities).
  std::vector<double> load;
  /// Sparse symmetric interaction edges: (zone a, zone b, weight).
  struct Edge {
    std::size_t a = 0;
    std::size_t b = 0;
    double weight = 0.0;
  };
  std::vector<Edge> edges;

  std::size_t zone_count() const noexcept { return load.size(); }

  /// Builds the graph of a rectangular zone grid: loads from the per-zone
  /// entity counts, edges between 4-neighbours weighted by the geometric
  /// mean of their loads (entities at zone borders interact across them).
  static ZoneGraph from_grid(std::span<const double> zone_loads,
                             std::size_t width, std::size_t height);
};

/// One server's assigned zones.
struct Partition {
  std::vector<std::vector<std::size_t>> servers;  ///< zone ids per server

  /// Number of non-empty servers.
  std::size_t server_count() const noexcept;
};

/// Quality of a partition against a graph and a per-server capacity.
struct PartitionCost {
  double max_load = 0.0;        ///< most loaded server
  double cut_weight = 0.0;      ///< interaction weight crossing servers
  std::size_t overloaded = 0;   ///< servers above capacity
};

/// Evaluates a partition. Zones absent from every server are an error;
/// throws std::invalid_argument on malformed input (duplicate or
/// out-of-range zones).
PartitionCost evaluate_partition(const ZoneGraph& graph,
                                 const Partition& partition,
                                 double server_capacity);

/// Partitioning strategies for the ablation study.
enum class PartitionStrategy {
  kRoundRobin,   ///< naive striping, ignores load and affinity
  kGreedyLoad,   ///< first-fit-decreasing by load (classic bin packing)
  kAffinity,     ///< greedy load + local search moves that reduce the cut
};

std::string_view partition_strategy_name(PartitionStrategy s) noexcept;

/// Packs the zones onto the fewest servers of `server_capacity` such that
/// no server exceeds it (single zones above capacity get a dedicated
/// server). kAffinity additionally runs a bounded local search that moves
/// zones between servers to reduce the interaction cut without violating
/// capacity. Deterministic. Throws std::invalid_argument on an empty graph
/// or non-positive capacity. When `recorder` is set, the call is timed into
/// the "phase.partition_us" histogram (with a span at `step`).
Partition partition_zones(const ZoneGraph& graph, double server_capacity,
                          PartitionStrategy strategy,
                          obs::Recorder* recorder = nullptr,
                          std::size_t step = 0);

}  // namespace mmog::core
