#include "core/load_model.hpp"

#include <algorithm>
#include <cmath>

namespace mmog::core {

std::string_view update_model_name(UpdateModel m) noexcept {
  switch (m) {
    case UpdateModel::kLinear: return "O(n)";
    case UpdateModel::kNLogN: return "O(n x log n)";
    case UpdateModel::kQuadratic: return "O(n^2)";
    case UpdateModel::kQuadraticLogN: return "O(n^2 x log n)";
    case UpdateModel::kCubic: return "O(n^3)";
  }
  return "?";
}

double update_cost(UpdateModel m, double n) noexcept {
  if (n <= 0.0) return 0.0;
  const double log_term = std::log2(n + 1.0);
  switch (m) {
    case UpdateModel::kLinear: return n;
    case UpdateModel::kNLogN: return n * log_term;
    case UpdateModel::kQuadratic: return n * n;
    case UpdateModel::kQuadraticLogN: return n * n * log_term;
    case UpdateModel::kCubic: return n * n * n;
  }
  return 0.0;
}

UpdateModel with_area_of_interest(UpdateModel m) noexcept {
  switch (m) {
    case UpdateModel::kQuadratic: return UpdateModel::kNLogN;
    case UpdateModel::kCubic: return UpdateModel::kQuadraticLogN;
    default: return m;
  }
}

double LoadModel::cpu_demand(double players) const noexcept {
  const double p = std::max(0.0, players);
  const double full = update_cost(model, reference_players);
  if (full <= 0.0) return 0.0;
  return update_cost(model, p) / full;
}

util::ResourceVector LoadModel::demand(double players) const noexcept {
  const double p = std::max(0.0, players);
  const double linear = reference_players > 0.0 ? p / reference_players : 0.0;
  // Memory holds entity state and network traffic is per-player streaming,
  // so both scale linearly; CPU follows the interaction update model.
  return util::ResourceVector::of(cpu_demand(p), linear, linear, linear);
}

}  // namespace mmog::core
