#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace mmog::trace {

/// A population-shock event in the trace (§III-B / Fig 2 of the paper).
struct EventSpec {
  enum class Kind {
    /// A highly unpopular operator decision: the active concurrent player
    /// count drops by `magnitude` (fraction of its value) in under a day,
    /// then — after the operators amend the change `recovery_delay_steps`
    /// later — recovers to `recovery_level` of the pre-event value.
    kUnpopularDecision,
    /// A content release: the count surges by `magnitude` over the first
    /// days and relaxes back over roughly a week.
    kContentRelease,
  };
  Kind kind = Kind::kContentRelease;
  std::size_t step = 0;                 ///< sample index where it begins
  double magnitude = 0.5;               ///< drop or surge fraction
  std::size_t recovery_delay_steps = 0; ///< unpopular decision: steps until amended
  double recovery_level = 0.95;         ///< unpopular decision: recovery target
};

/// One region of the synthetic world.
struct RegionSpec {
  std::string name = "Europe";
  int utc_offset_hours = 0;
  std::size_t server_groups = 40;
  /// Average demand per server group at the diurnal baseline, in players.
  double base_players_per_group = 1000.0;
  /// Weekend demand multiplier; 1.0 disables the weekend effect (per
  /// §III-C, about one third of the real traces show none).
  double weekend_multiplier = 1.0;
  /// Fraction of groups pegged at ~95-100 % capacity around the clock
  /// (§III-C reports 2-5 % of servers always at 95 %).
  double always_full_fraction = 0.03;
};

/// Configuration of the synthetic RuneScape-like trace generator. This is
/// the substitution for the real RuneScape traces (see DESIGN.md §2): it
/// reproduces the statistical properties the paper reports — diurnal cycles
/// with a 24 h autocorrelation peak, strong peak-hour variation (median ≈
/// 1.5x minimum), diurnal IQR cycles, rare short outages, and the Fig 2
/// population-shock events.
struct RuneScapeModelConfig {
  std::size_t steps = util::samples_per_days(16);  ///< 2 weeks + 2 lead days
  std::uint64_t seed = 1;
  std::vector<RegionSpec> regions;
  std::vector<EventSpec> events;

  /// Diurnal shape: amplitude of the daily sinusoid relative to the mean
  /// (0.35 yields a peak-hour median roughly 1.5x the nightly minimum).
  double diurnal_amplitude = 0.35;
  /// Local hour of peak demand (late afternoon / evening, per §III).
  double peak_hour = 19.5;
  /// Relative standard deviation of the innovations of the multiplicative
  /// region-level noise. The noise is AR(1) (see noise_persistence): player
  /// interactions create sustained minutes-long load wiggles (§III-D), not
  /// white noise, and that short-term structure is what separates smoothing
  /// predictors from one-step chasers in §V-B.
  double region_noise = 0.012;
  /// AR(1) coefficient of the region-level noise (0 = white noise).
  double noise_persistence = 0.2;
  /// Relative standard deviation of per-group white noise (players hopping
  /// between worlds at the 2-minute sampling interval).
  double group_noise = 0.02;
  /// Expected global activity waves per day: short game-wide demand surges
  /// (scheduled activities, world events) that ramp up over minutes and
  /// relax back. These fast sustained ramps are the §III "more dynamic than
  /// previously believed" component of the workload and are what separates
  /// an extrapolating predictor from one-step chasers in §V-B.
  double waves_per_day = 8.0;
  /// Mean relative amplitude of an activity wave (individual waves vary).
  double wave_amplitude = 0.18;
  /// Rise duration bounds of a wave, in samples; the decay is about twice
  /// the rise.
  std::size_t wave_min_rise_steps = 4;
  std::size_t wave_max_rise_steps = 10;
  /// Expected outages per group per simulated week (short-lived, §III-C).
  double outages_per_group_week = 0.15;
  /// Outage duration bounds, in samples (2-minute steps).
  std::size_t outage_min_steps = 2;
  std::size_t outage_max_steps = 10;

  /// The five-region default world used throughout the paper's evaluation.
  static RuneScapeModelConfig paper_default();

  /// Rescales the per-region `server_groups` so they sum to `total_groups`
  /// while keeping the regions' relative sizes (largest-remainder
  /// apportionment; every region keeps at least one group). The per-group
  /// statistical properties are untouched, so a scaled world is the same
  /// workload shape at a different fleet size — the knob behind
  /// `mmog_bench --groups` and `mmog_tracegen --groups`.
  void scale_to_groups(std::size_t total_groups);

  /// Total server groups across all regions.
  std::size_t total_groups() const noexcept;
};

/// Generates the synthetic world trace.
WorldTrace generate(const RuneScapeModelConfig& config);

/// The multiplicative event envelope applied to the global demand at `step`
/// (exposed for tests and for the Fig 2 harness annotations).
double event_multiplier(const std::vector<EventSpec>& events, std::size_t step);

}  // namespace mmog::trace
