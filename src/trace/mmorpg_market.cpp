#include "trace/mmorpg_market.hpp"

#include <cmath>

namespace mmog::trace {

double title_players_at(const TitleSpec& title, double year) {
  if (year < title.launch_year) return 0.0;
  // Logistic ramp centred ~1.5 years after launch.
  const double x = year - title.launch_year - 1.5;
  double players =
      title.plateau_players / (1.0 + std::exp(-title.growth_rate * x));
  if (title.decline_start_year > 0.0 && year > title.decline_start_year) {
    players *= std::exp(-title.decline_rate * (year - title.decline_start_year));
  }
  return players;
}

std::vector<MarketPoint> market_series(const std::vector<TitleSpec>& titles,
                                       double from_year, double to_year,
                                       double step_years) {
  std::vector<MarketPoint> out;
  if (step_years <= 0.0 || to_year < from_year) return out;
  for (double y = from_year; y <= to_year + 1e-9; y += step_years) {
    MarketPoint p;
    p.year = y;
    p.per_title.reserve(titles.size());
    for (const auto& t : titles) {
      const double v = title_players_at(t, y);
      p.per_title.push_back(v);
      p.total += v;
    }
    out.push_back(std::move(p));
  }
  return out;
}

std::vector<TitleSpec> paper_title_catalog() {
  // Plateaus in players; the six >500k titles of 2008 are WoW, RuneScape,
  // Lineage, Lineage II, Final Fantasy XI and Dofus.
  return {
      {"The Realm Online", 1996.8, 25e3, 2.0, 2000.0, 0.4},
      {"Ultima Online", 1997.7, 250e3, 2.0, 2004.0, 0.25},
      {"Lineage", 1998.7, 3.2e6, 1.6, 2006.0, 0.25},
      {"EverQuest", 1999.2, 480e3, 2.0, 2005.0, 0.35},
      {"Asheron's Call", 1999.9, 120e3, 2.0, 2003.0, 0.4},
      {"Anarchy Online", 2001.5, 120e3, 2.0, 2004.0, 0.35},
      {"World War II Online", 2001.4, 40e3, 2.5, 2003.0, 0.3},
      {"Majestic", 2001.6, 15e3, 3.0, 2002.2, 2.0},
      {"Dark Age of Camelot", 2001.8, 250e3, 2.2, 2005.0, 0.35},
      {"Motor City Online", 2001.8, 30e3, 3.0, 2003.0, 1.5},
      {"Tibia", 2001.0, 300e3, 1.2},
      {"RuneScape", 2001.0, 5.0e6, 0.9},
      {"Final Fantasy XI", 2002.4, 550e3, 1.8},
      {"Earth & Beyond", 2002.7, 40e3, 3.0, 2004.0, 1.0},
      {"Asheron's Call 2", 2002.9, 50e3, 2.5, 2004.0, 1.2},
      {"The Sims Online", 2002.9, 100e3, 2.5, 2004.0, 0.8},
      {"There", 2003.0, 30e3, 2.0},
      {"A Tale in the Desert", 2003.1, 5e3, 2.0},
      {"EverQuest Online Adventures", 2003.1, 60e3, 2.5, 2005.0, 0.6},
      {"Shadowbane", 2003.2, 80e3, 3.0, 2004.5, 0.8},
      {"Eve Online", 2003.4, 240e3, 1.0},
      {"PlanetSide", 2003.4, 60e3, 3.0, 2004.5, 0.6},
      {"Toontown Online", 2003.4, 120e3, 1.5},
      {"Second Life", 2003.5, 450e3, 1.2},
      {"Star Wars Galaxies", 2003.5, 300e3, 2.8, 2005.8, 0.5},
      {"Lineage II", 2003.8, 2.2e6, 1.8, 2007.0, 0.15},
      {"Puzzle Pirates", 2003.9, 40e3, 2.0},
      {"Horizons", 2003.9, 30e3, 3.0, 2004.8, 0.8},
      {"City of Heroes / Villains", 2004.3, 180e3, 2.5, 2006.0, 0.3},
      {"Dofus", 2004.7, 1.5e6, 1.4},
      {"EverQuest II", 2004.8, 300e3, 2.2, 2006.5, 0.2},
      {"World of Warcraft", 2004.9, 10.5e6, 1.3},
      {"The Matrix Online", 2005.2, 50e3, 3.0, 2005.8, 0.8},
      {"Guild Wars", 2005.3, 480e3, 1.5, 2007.5, 0.2},
      {"Dungeons & Dragons Online", 2006.1, 120e3, 2.5, 2007.0, 0.4},
      {"Auto Assault", 2006.3, 15e3, 3.0, 2006.8, 2.5},
  };
}

std::vector<std::string> titles_above(const std::vector<TitleSpec>& titles,
                                      double year, double threshold) {
  std::vector<std::string> names;
  for (const auto& t : titles) {
    if (title_players_at(t, year) >= threshold) names.push_back(t.name);
  }
  return names;
}

}  // namespace mmog::trace
