#pragma once

#include <cstddef>
#include <vector>

#include "trace/trace.hpp"

namespace mmog::trace {

/// Per-step aggregate across a region's server groups (top sub-plot of the
/// paper's Fig 3: minimum, median and maximum load at every time step).
struct StepAggregate {
  double min = 0.0;
  double median = 0.0;
  double max = 0.0;
};

/// Computes min/median/max of the group loads at each step.
std::vector<StepAggregate> aggregate_over_groups(const RegionalTrace& region);

/// Interquartile range of the group loads at each step (middle sub-plot of
/// Fig 3).
std::vector<double> iqr_over_time(const RegionalTrace& region);

/// Autocorrelation function of each group's load up to `max_lag` (bottom
/// sub-plot of Fig 3; with 2-minute samples a 24 h cycle peaks at lag 720).
std::vector<std::vector<double>> group_autocorrelations(
    const RegionalTrace& region, std::size_t max_lag);

/// Counts the groups whose load stays at or above `fraction` of capacity for
/// at least `min_time_fraction` of the samples (§III-C: 2-5 % of servers are
/// always at 95 %).
std::size_t count_always_full(const RegionalTrace& region, double fraction,
                              double min_time_fraction = 0.95);

/// A detected population shock in a global player-count series.
struct DetectedEvent {
  enum class Kind { kDrop, kSurge };
  Kind kind = Kind::kDrop;
  std::size_t step = 0;       ///< where the change completes
  double relative_change = 0; ///< e.g. -0.25 for a quarter drop
};

/// Scans a global series with a trailing/leading window of `window` samples
/// and reports changes whose magnitude exceeds `threshold` (relative).
/// Events closer than `window` samples apart are merged (strongest kept).
std::vector<DetectedEvent> detect_events(const util::TimeSeries& global,
                                         std::size_t window = 720,
                                         double threshold = 0.18);

}  // namespace mmog::trace
