#include "trace/io.hpp"

#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/atomic_file.hpp"
#include "util/csv.hpp"

namespace mmog::trace {

void write_world_csv(std::ostream& out, const WorldTrace& world) {
  util::write_csv_row(out, {"region", "utc_offset_hours", "group", "capacity",
                            "step", "players"});
  for (const auto& region : world.regions) {
    for (const auto& group : region.groups) {
      for (std::size_t t = 0; t < group.players.size(); ++t) {
        util::write_csv_row(
            out, {region.name, std::to_string(region.utc_offset_hours),
                  group.name, std::to_string(group.capacity),
                  std::to_string(t), std::to_string(group.players[t])});
      }
    }
  }
}

void write_world_csv_file(const std::string& path, const WorldTrace& world) {
  util::AtomicFileWriter writer(path);
  write_world_csv(writer.stream(), world);
  writer.commit();
}

WorldTrace read_world_csv(std::istream& in) {
  const auto doc = util::read_csv(in);
  const auto c_region = doc.column("region");
  const auto c_offset = doc.column("utc_offset_hours");
  const auto c_group = doc.column("group");
  const auto c_capacity = doc.column("capacity");
  const auto c_step = doc.column("step");
  const auto c_players = doc.column("players");

  WorldTrace world;
  std::map<std::string, std::size_t> region_index;
  std::map<std::pair<std::string, std::string>, std::size_t> group_index;

  auto to_number = [](const std::string& s, const char* what) -> double {
    try {
      std::size_t pos = 0;
      const double v = std::stod(s, &pos);
      if (pos != s.size()) throw std::invalid_argument(s);
      return v;
    } catch (const std::exception&) {
      throw std::runtime_error(std::string("read_world_csv: bad ") + what +
                               " value '" + s + "'");
    }
  };

  for (const auto& row : doc.rows) {
    if (row.size() < doc.header.size()) {
      throw std::runtime_error("read_world_csv: short row");
    }
    const auto& region_name = row[c_region];
    auto [rit, region_new] =
        region_index.try_emplace(region_name, world.regions.size());
    if (region_new) {
      RegionalTrace region;
      region.name = region_name;
      region.utc_offset_hours = static_cast<int>(
          to_number(row[c_offset], "utc_offset_hours"));
      world.regions.push_back(std::move(region));
    }
    auto& region = world.regions[rit->second];

    const auto key = std::make_pair(region_name, row[c_group]);
    auto [git, group_new] = group_index.try_emplace(key, region.groups.size());
    if (group_new) {
      ServerGroupTrace group;
      group.name = row[c_group];
      group.capacity = static_cast<std::size_t>(
          to_number(row[c_capacity], "capacity"));
      group.players = util::TimeSeries(util::kSampleStepSeconds);
      region.groups.push_back(std::move(group));
    }
    auto& group = region.groups[git->second];

    const auto step =
        static_cast<std::size_t>(to_number(row[c_step], "step"));
    if (step != group.players.size()) {
      std::ostringstream msg;
      msg << "read_world_csv: non-contiguous step " << step << " for group "
          << group.name << " (expected " << group.players.size() << ")";
      throw std::runtime_error(msg.str());
    }
    group.players.push_back(to_number(row[c_players], "players"));
  }
  return world;
}

WorldTrace read_world_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_world_csv_file: cannot open " + path);
  }
  return read_world_csv(in);
}

}  // namespace mmog::trace
