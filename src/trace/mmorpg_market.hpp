#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mmog::trace {

/// Logistic subscription-growth model of one MMORPG title (the paper's
/// Fig 1, after Woodcock's survey). Each title ramps towards a plateau and
/// optionally declines after its prime.
struct TitleSpec {
  std::string name;
  double launch_year = 2000.0;
  double plateau_players = 100e3;  ///< subscriber plateau
  double growth_rate = 2.0;        ///< logistic steepness, 1/years
  double decline_start_year = 0.0; ///< 0 = no decline
  double decline_rate = 0.0;       ///< exponential decline, 1/years
};

/// Player count of one title at a (fractional) calendar year.
double title_players_at(const TitleSpec& title, double year);

/// One sampled point in the market series.
struct MarketPoint {
  double year = 0.0;
  std::vector<double> per_title;  ///< same order as the title catalog
  double total = 0.0;
};

/// Samples the market between [from_year, to_year] every `step_years`.
std::vector<MarketPoint> market_series(const std::vector<TitleSpec>& titles,
                                       double from_year, double to_year,
                                       double step_years = 0.25);

/// The Fig 1 catalog: the MMORPG titles the paper plots, parameterized from
/// the numbers it quotes (six titles above 500 k players in 2008, World of
/// Warcraft ≈ 10 M, RuneScape ≈ 5 M active, ≈ 25 M total by 2008; the same
/// growth extrapolates to > 60 M by 2011).
std::vector<TitleSpec> paper_title_catalog();

/// Titles with at least `threshold` players at `year`.
std::vector<std::string> titles_above(const std::vector<TitleSpec>& titles,
                                      double year, double threshold);

}  // namespace mmog::trace
