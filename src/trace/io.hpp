#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace mmog::trace {

/// Serializes a world trace as long-format CSV with the columns
/// `region,utc_offset_hours,group,capacity,step,players` — the same shape a
/// scrape of a live status page (the paper's RuneScape collector) would
/// produce, so real traces can be dropped in for the synthetic ones.
void write_world_csv(std::ostream& out, const WorldTrace& world);
void write_world_csv_file(const std::string& path, const WorldTrace& world);

/// Parses a world trace written by write_world_csv (or hand-assembled in
/// the same format). Regions and groups appear in first-seen order; steps
/// must be contiguous from 0 per group. Throws std::runtime_error on
/// malformed input (missing columns, non-numeric cells, gaps).
WorldTrace read_world_csv(std::istream& in);
WorldTrace read_world_csv_file(const std::string& path);

}  // namespace mmog::trace
