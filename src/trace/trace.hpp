#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/timeseries.hpp"

namespace mmog::trace {

/// Player-count time series of one server group (the unit the RuneScape
/// status page reports: a named server cluster with a player capacity).
struct ServerGroupTrace {
  std::string name;
  std::size_t capacity = 2000;  ///< max concurrent players (RuneScape: 2000)
  util::TimeSeries players;     ///< concurrent players every 2 minutes
};

/// All server groups of one geographic region.
struct RegionalTrace {
  std::string name;            ///< e.g. "Europe", "US East Coast"
  int utc_offset_hours = 0;    ///< local-time offset used by diurnal patterns
  std::vector<ServerGroupTrace> groups;

  /// Sum of player counts across the region's groups.
  util::TimeSeries total() const;
};

/// A full multi-region workload trace.
struct WorldTrace {
  double step_seconds = util::kSampleStepSeconds;
  std::vector<RegionalTrace> regions;

  /// Sum of player counts across all regions (the paper's Fig 2 view).
  util::TimeSeries global() const;

  /// Number of samples per group (0 when empty).
  std::size_t steps() const;
};

}  // namespace mmog::trace
