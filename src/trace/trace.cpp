#include "trace/trace.hpp"

namespace mmog::trace {

util::TimeSeries RegionalTrace::total() const {
  if (groups.empty()) return util::TimeSeries();
  std::vector<util::TimeSeries> all;
  all.reserve(groups.size());
  for (const auto& g : groups) all.push_back(g.players);
  return util::TimeSeries::sum(all);
}

util::TimeSeries WorldTrace::global() const {
  std::vector<util::TimeSeries> all;
  for (const auto& r : regions) {
    if (!r.groups.empty()) all.push_back(r.total());
  }
  if (all.empty()) return util::TimeSeries();
  return util::TimeSeries::sum(all);
}

std::size_t WorldTrace::steps() const {
  for (const auto& r : regions) {
    for (const auto& g : r.groups) return g.players.size();
  }
  return 0;
}

}  // namespace mmog::trace
