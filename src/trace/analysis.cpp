#include "trace/analysis.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace mmog::trace {

std::vector<StepAggregate> aggregate_over_groups(const RegionalTrace& region) {
  std::vector<StepAggregate> out;
  if (region.groups.empty()) return out;
  const std::size_t steps = region.groups.front().players.size();
  out.resize(steps);
  std::vector<double> column(region.groups.size());
  for (std::size_t t = 0; t < steps; ++t) {
    for (std::size_t g = 0; g < region.groups.size(); ++g) {
      column[g] = region.groups[g].players[t];
    }
    out[t].min = *std::min_element(column.begin(), column.end());
    out[t].max = *std::max_element(column.begin(), column.end());
    out[t].median = util::median(column);
  }
  return out;
}

std::vector<double> iqr_over_time(const RegionalTrace& region) {
  std::vector<double> out;
  if (region.groups.empty()) return out;
  const std::size_t steps = region.groups.front().players.size();
  out.resize(steps);
  std::vector<double> column(region.groups.size());
  for (std::size_t t = 0; t < steps; ++t) {
    for (std::size_t g = 0; g < region.groups.size(); ++g) {
      column[g] = region.groups[g].players[t];
    }
    out[t] = util::interquartile_range(column);
  }
  return out;
}

std::vector<std::vector<double>> group_autocorrelations(
    const RegionalTrace& region, std::size_t max_lag) {
  std::vector<std::vector<double>> out;
  out.reserve(region.groups.size());
  for (const auto& g : region.groups) {
    out.push_back(util::autocorrelation(g.players.values(), max_lag));
  }
  return out;
}

std::size_t count_always_full(const RegionalTrace& region, double fraction,
                              double min_time_fraction) {
  std::size_t count = 0;
  for (const auto& g : region.groups) {
    if (g.players.empty()) continue;
    const double threshold = fraction * static_cast<double>(g.capacity);
    std::size_t above = 0;
    for (double v : g.players.values()) {
      if (v >= threshold) ++above;
    }
    const double time_fraction =
        static_cast<double>(above) / static_cast<double>(g.players.size());
    if (time_fraction >= min_time_fraction) ++count;
  }
  return count;
}

std::vector<DetectedEvent> detect_events(const util::TimeSeries& global,
                                         std::size_t window, double threshold) {
  std::vector<DetectedEvent> events;
  const std::size_t n = global.size();
  if (n < 2 * window + 1) return events;
  for (std::size_t t = window; t + window < n; ++t) {
    double before = 0.0, after = 0.0;
    for (std::size_t i = t - window; i < t; ++i) before += global[i];
    for (std::size_t i = t; i < t + window; ++i) after += global[i];
    before /= static_cast<double>(window);
    after /= static_cast<double>(window);
    if (before <= 0.0) continue;
    const double rel = (after - before) / before;
    if (std::abs(rel) < threshold) continue;
    DetectedEvent ev;
    ev.kind = rel < 0.0 ? DetectedEvent::Kind::kDrop
                        : DetectedEvent::Kind::kSurge;
    ev.step = t;
    ev.relative_change = rel;
    if (!events.empty() && events.back().kind == ev.kind &&
        t - events.back().step < window) {
      if (std::abs(rel) > std::abs(events.back().relative_change)) {
        events.back() = ev;  // keep the strongest sample of the episode
      }
    } else {
      events.push_back(ev);
    }
  }
  return events;
}

}  // namespace mmog::trace
