#include "trace/runescape_model.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace mmog::trace {
namespace {

constexpr double kStepsPerDay = 720.0;  // 2-minute samples

/// Smooth ramp from 0 to 1 over `len` steps (cosine easing).
double ramp01(double x, double len) {
  if (len <= 0.0) return x >= 0.0 ? 1.0 : 0.0;
  const double u = std::clamp(x / len, 0.0, 1.0);
  return 0.5 - 0.5 * std::cos(std::numbers::pi * u);
}

double unpopular_decision_envelope(const EventSpec& e, double steps_since) {
  const double drop_len = 0.6 * kStepsPerDay;     // "in less than one day"
  const double recover_len = 2.0 * kStepsPerDay;  // gradual comeback
  const double delay = static_cast<double>(e.recovery_delay_steps);
  if (steps_since < delay) {
    return 1.0 - e.magnitude * ramp01(steps_since, drop_len);
  }
  // Recovery starts from wherever the drop actually got to — an amendment
  // issued before the full drop completed must not jump the level down.
  const double low = 1.0 - e.magnitude * ramp01(delay, drop_len);
  const double since_amend = steps_since - delay;
  return low + (e.recovery_level - low) * ramp01(since_amend, recover_len);
}

double content_release_envelope(const EventSpec& e, double steps_since) {
  const double rise_len = 1.0 * kStepsPerDay;     // surge builds in a day
  const double plateau_len = 4.0 * kStepsPerDay;  // "about one week" total
  const double decay_len = 3.0 * kStepsPerDay;
  const double residual = 0.05;  // releases retain a few percent of players
  double shape = 0.0;
  if (steps_since < rise_len) {
    shape = ramp01(steps_since, rise_len);
  } else if (steps_since < rise_len + plateau_len) {
    shape = 1.0;
  } else {
    const double d = steps_since - rise_len - plateau_len;
    shape = residual + (1.0 - residual) * (1.0 - ramp01(d, decay_len));
  }
  return 1.0 + e.magnitude * shape;
}

struct GroupState {
  double weight = 1.0;
  bool always_full = false;
  std::vector<std::pair<std::size_t, std::size_t>> outages;  // [begin, end)

  bool in_outage(std::size_t step) const noexcept {
    for (const auto& [b, e] : outages) {
      if (step >= b && step < e) return true;
    }
    return false;
  }
};

}  // namespace

double event_multiplier(const std::vector<EventSpec>& events,
                        std::size_t step) {
  double mult = 1.0;
  for (const auto& e : events) {
    if (step < e.step) continue;
    const double since = static_cast<double>(step - e.step);
    switch (e.kind) {
      case EventSpec::Kind::kUnpopularDecision:
        mult *= unpopular_decision_envelope(e, since);
        break;
      case EventSpec::Kind::kContentRelease:
        mult *= content_release_envelope(e, since);
        break;
    }
  }
  return mult;
}

RuneScapeModelConfig RuneScapeModelConfig::paper_default() {
  RuneScapeModelConfig c;
  c.regions = {
      {.name = "Europe",
       .utc_offset_hours = 1,
       .server_groups = 40,
       .base_players_per_group = 1250.0,
       .weekend_multiplier = 1.0,  // region 0 shows no weekend effect (§III-C)
       .always_full_fraction = 0.03},
      {.name = "US East Coast",
       .utc_offset_hours = -5,
       .server_groups = 30,
       .base_players_per_group = 1150.0,
       .weekend_multiplier = 1.12,
       .always_full_fraction = 0.03},
      {.name = "US West Coast",
       .utc_offset_hours = -8,
       .server_groups = 25,
       .base_players_per_group = 1150.0,
       .weekend_multiplier = 1.12,
       .always_full_fraction = 0.04},
      {.name = "US Central",
       .utc_offset_hours = -6,
       .server_groups = 15,
       .base_players_per_group = 1050.0,
       .weekend_multiplier = 1.12,
       .always_full_fraction = 0.03},
      {.name = "Australia",
       .utc_offset_hours = 10,
       .server_groups = 10,
       .base_players_per_group = 950.0,
       .weekend_multiplier = 1.10,
       .always_full_fraction = 0.03},
  };
  return c;
}

std::size_t RuneScapeModelConfig::total_groups() const noexcept {
  std::size_t total = 0;
  for (const RegionSpec& r : regions) total += r.server_groups;
  return total;
}

void RuneScapeModelConfig::scale_to_groups(std::size_t total_groups) {
  if (regions.empty() || total_groups == 0) return;
  if (total_groups < regions.size()) regions.resize(total_groups);
  const std::size_t current = this->total_groups();
  if (current == 0 || current == total_groups) return;

  // Largest-remainder apportionment: floor every region's proportional
  // share (at least 1), then hand the leftover groups to the regions with
  // the largest fractional remainders, ties to the earlier region so the
  // result is deterministic.
  std::vector<double> remainders(regions.size());
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < regions.size(); ++i) {
    const double exact = static_cast<double>(regions[i].server_groups) *
                         static_cast<double>(total_groups) /
                         static_cast<double>(current);
    std::size_t share = static_cast<std::size_t>(exact);
    if (share == 0) share = 1;
    remainders[i] = exact - static_cast<double>(share);
    regions[i].server_groups = share;
    assigned += share;
  }
  while (assigned < total_groups) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < regions.size(); ++i) {
      if (remainders[i] > remainders[best]) best = i;
    }
    remainders[best] -= 1.0;
    ++regions[best].server_groups;
    ++assigned;
  }
  while (assigned > total_groups) {  // over-assignment from the 1-minimums
    std::size_t best = 0;
    for (std::size_t i = 1; i < regions.size(); ++i) {
      if (regions[i].server_groups > regions[best].server_groups) best = i;
    }
    if (regions[best].server_groups <= 1) break;
    --regions[best].server_groups;
    --assigned;
  }
}

namespace {

/// One global activity wave: a triangular surge envelope.
struct Wave {
  std::size_t start = 0;
  std::size_t rise = 3;
  std::size_t fall = 6;
  double amplitude = 0.1;

  double at(std::size_t step) const noexcept {
    if (step < start) return 0.0;
    const std::size_t s = step - start;
    if (s < rise) {
      return amplitude * static_cast<double>(s) / static_cast<double>(rise);
    }
    if (s < rise + fall) {
      return amplitude *
             (1.0 - static_cast<double>(s - rise) / static_cast<double>(fall));
    }
    return 0.0;
  }
};

std::vector<Wave> schedule_waves(const RuneScapeModelConfig& config,
                                 util::Rng& rng) {
  std::vector<Wave> waves;
  const double days = static_cast<double>(config.steps) / kStepsPerDay;
  const auto count = rng.poisson(config.waves_per_day * days);
  waves.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Wave w;
    w.start = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(config.steps) - 1));
    w.rise = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(config.wave_min_rise_steps),
                        static_cast<std::int64_t>(config.wave_max_rise_steps)));
    w.fall = 2 * w.rise;
    w.amplitude =
        config.wave_amplitude * std::max(0.25, rng.lognormal(0.0, 0.4));
    waves.push_back(w);
  }
  return waves;
}

}  // namespace

WorldTrace generate(const RuneScapeModelConfig& config) {
  util::Rng rng(config.seed);
  WorldTrace world;
  world.step_seconds = util::kSampleStepSeconds;
  world.regions.reserve(config.regions.size());

  // Game-wide activity waves hit every region simultaneously.
  util::Rng wave_rng = rng.fork();
  const auto waves = schedule_waves(config, wave_rng);
  std::vector<double> wave_mult(config.steps, 1.0);
  for (std::size_t t = 0; t < config.steps; ++t) {
    for (const auto& w : waves) wave_mult[t] += w.at(t);
  }

  for (const auto& spec : config.regions) {
    util::Rng region_rng = rng.fork();
    RegionalTrace region;
    region.name = spec.name;
    region.utc_offset_hours = spec.utc_offset_hours;
    region.groups.resize(spec.server_groups);

    // Fixed per-group popularity and the always-full subset.
    std::vector<GroupState> states(spec.server_groups);
    const auto always_full_count = static_cast<std::size_t>(
        std::llround(spec.always_full_fraction *
                     static_cast<double>(spec.server_groups)));
    for (std::size_t g = 0; g < spec.server_groups; ++g) {
      auto& group = region.groups[g];
      group.name = spec.name + "-" + std::to_string(g + 1);
      group.capacity = 2000;
      group.players.reserve(config.steps);
      group.players = util::TimeSeries(util::kSampleStepSeconds);
      states[g].weight = region_rng.lognormal(0.0, 0.35);
      states[g].always_full = g < always_full_count;
      // Rare short outages (Poisson arrivals over the whole horizon).
      const double weeks =
          static_cast<double>(config.steps) / (7.0 * kStepsPerDay);
      const auto n_outages =
          region_rng.poisson(config.outages_per_group_week * weeks);
      for (std::uint64_t o = 0; o < n_outages; ++o) {
        const auto begin = static_cast<std::size_t>(region_rng.uniform_int(
            0, static_cast<std::int64_t>(config.steps) - 1));
        const auto len = static_cast<std::size_t>(region_rng.uniform_int(
            static_cast<std::int64_t>(config.outage_min_steps),
            static_cast<std::int64_t>(config.outage_max_steps)));
        states[g].outages.emplace_back(begin,
                                       std::min(config.steps, begin + len));
      }
    }

    double weight_total = 0.0;
    std::size_t normal_groups = 0;
    for (const auto& st : states) {
      if (!st.always_full) {
        weight_total += st.weight;
        ++normal_groups;
      }
    }
    if (weight_total <= 0.0) weight_total = 1.0;

    double noise_state = 0.0;  // AR(1) multiplicative region noise
    for (std::size_t t = 0; t < config.steps; ++t) {
      const double hours = static_cast<double>(t) *
                           util::kSampleStepSeconds / 3600.0;
      const double local_hour = std::fmod(
          hours + static_cast<double>(spec.utc_offset_hours) + 48.0, 24.0);
      const double diurnal =
          1.0 + config.diurnal_amplitude *
                    std::cos(2.0 * std::numbers::pi *
                             (local_hour - config.peak_hour) / 24.0);
      // Weekend effect with a smooth ~4 h transition around midnight (real
      // populations shift gradually, not as a step).
      const double week_hours = std::fmod(hours, 7.0 * 24.0);
      const double weekend_start = 5.0 * 24.0;
      const double weekend_end = 7.0 * 24.0;
      const double transition = 4.0;
      double weekend_level = 0.0;
      if (week_hours >= weekend_start - transition &&
          week_hours < weekend_start) {
        weekend_level = (week_hours - (weekend_start - transition)) / transition;
      } else if (week_hours >= weekend_start &&
                 week_hours < weekend_end - transition) {
        weekend_level = 1.0;
      } else if (week_hours >= weekend_end - transition) {
        weekend_level = (weekend_end - week_hours) / transition;
      }
      const double weekly =
          1.0 + (spec.weekend_multiplier - 1.0) * weekend_level;
      const double events = event_multiplier(config.events, t);
      noise_state = config.noise_persistence * noise_state +
                    region_rng.normal(0.0, config.region_noise);
      const double noise = std::max(0.3, 1.0 + noise_state);
      const double demand = static_cast<double>(normal_groups) *
                            spec.base_players_per_group * diurnal * weekly *
                            events * noise * wave_mult[t];

      // Distribute demand over the normal groups by popularity weight,
      // clamp at capacity, and spill the overflow into remaining headroom.
      std::vector<double> loads(spec.server_groups, 0.0);
      double overflow = 0.0;
      for (std::size_t g = 0; g < spec.server_groups; ++g) {
        const auto& st = states[g];
        const auto cap = static_cast<double>(region.groups[g].capacity);
        if (st.in_outage(t)) {
          overflow += st.always_full
                          ? cap * 0.97
                          : demand * st.weight / weight_total;
          continue;
        }
        if (st.always_full) {
          loads[g] = cap * std::clamp(0.95 + region_rng.normal(0.0, 0.01),
                                      0.90, 1.0);
          continue;
        }
        const double gnoise =
            std::max(0.0, 1.0 + region_rng.normal(0.0, config.group_noise));
        double want = demand * st.weight / weight_total * gnoise;
        if (want > cap) {
          overflow += want - cap;
          want = cap;
        }
        loads[g] = want;
      }
      // Spill overflow into groups with headroom, round-robin.
      for (std::size_t g = 0; g < spec.server_groups && overflow > 0.0; ++g) {
        if (states[g].in_outage(t) || states[g].always_full) continue;
        const auto cap = static_cast<double>(region.groups[g].capacity);
        const double room = cap - loads[g];
        const double take = std::min(room, overflow);
        loads[g] += take;
        overflow -= take;
      }
      for (std::size_t g = 0; g < spec.server_groups; ++g) {
        region.groups[g].players.push_back(std::floor(loads[g]));
      }
    }
    world.regions.push_back(std::move(region));
  }
  return world;
}

}  // namespace mmog::trace
