#include "fault/parse.hpp"

#include <cstdlib>
#include <stdexcept>

#include "util/duration.hpp"

namespace mmog::fault {
namespace {

double parse_number(std::string_view text, std::string_view what) {
  const std::string s(text);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || s.empty()) {
    throw std::invalid_argument("fault spec: malformed " + std::string(what) +
                                " '" + s + "'");
  }
  return v;
}

FaultKind parse_kind(std::string_view name) {
  if (name == "outage") return FaultKind::kOutage;
  if (name == "capacity") return FaultKind::kCapacityLoss;
  if (name == "latency") return FaultKind::kLatencyDegradation;
  if (name == "flap") return FaultKind::kGrantFlap;
  throw std::invalid_argument("fault spec: unknown kind '" +
                              std::string(name) +
                              "' (expected outage|capacity|latency|flap)");
}

}  // namespace

double parse_duration_steps(std::string_view text, bool allow_zero) {
  return util::parse_duration_steps(text, allow_zero, "fault spec");
}

FaultSpec parse_fault_spec(std::string_view text) {
  const auto colon = text.find(':');
  if (colon == std::string_view::npos) {
    throw std::invalid_argument(
        "fault spec: expected 'kind:key=value,...', got '" +
        std::string(text) + "'");
  }
  FaultSpec spec;
  spec.kind = parse_kind(text.substr(0, colon));
  // Kind-specific severity defaults; overridable via keep/classes/severity.
  spec.severity = spec.kind == FaultKind::kCapacityLoss ? 0.5 : 1.0;

  bool have_dc = false;
  auto rest = text.substr(colon + 1);
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const auto token = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (token.empty()) continue;
    const auto eq = token.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument("fault spec: expected key=value, got '" +
                                  std::string(token) + "'");
    }
    const auto key = token.substr(0, eq);
    const auto value = token.substr(eq + 1);
    if (key == "dc") {
      spec.dc_index = static_cast<std::size_t>(parse_number(value, "dc"));
      have_dc = true;
    } else if (key == "mtbf") {
      spec.mtbf_steps = parse_duration_steps(value);
    } else if (key == "mttr") {
      spec.mttr_steps = parse_duration_steps(value);
    } else if (key == "from") {
      spec.window_from = static_cast<std::size_t>(
          parse_duration_steps(value, /*allow_zero=*/true));
    } else if (key == "to") {
      spec.window_to = static_cast<std::size_t>(parse_duration_steps(value));
    } else if (key == "seed") {
      spec.seed = static_cast<std::uint64_t>(parse_number(value, "seed"));
    } else if (key == "dist") {
      if (value == "exp") {
        spec.distribution = FaultDistribution::kExponential;
      } else if (value == "weibull") {
        spec.distribution = FaultDistribution::kWeibull;
      } else {
        throw std::invalid_argument(
            "fault spec: unknown dist '" + std::string(value) +
            "' (expected exp|weibull)");
      }
    } else if (key == "shape") {
      spec.weibull_shape = parse_number(value, "shape");
    } else if (key == "keep" || key == "classes" || key == "severity") {
      spec.severity = parse_number(value, key);
    } else {
      throw std::invalid_argument("fault spec: unknown key '" +
                                  std::string(key) + "'");
    }
  }
  if (!have_dc) {
    throw std::invalid_argument("fault spec: missing dc=N");
  }
  if (!spec.fixed_window() && spec.mtbf_steps <= 0.0 &&
      spec.mttr_steps <= 0.0) {
    throw std::invalid_argument(
        "fault spec: need either mtbf=..,mttr=.. or from=..,to=..");
  }
  return spec;
}

std::vector<FaultSpec> parse_fault_specs(std::string_view text) {
  std::vector<FaultSpec> specs;
  while (!text.empty()) {
    const auto semi = text.find(';');
    const auto part = text.substr(0, semi);
    text = semi == std::string_view::npos ? std::string_view{}
                                          : text.substr(semi + 1);
    if (!part.empty()) specs.push_back(parse_fault_spec(part));
  }
  return specs;
}

std::string describe(const FaultSpec& spec) {
  std::string out(fault_kind_name(spec.kind));
  out += ":dc=" + std::to_string(spec.dc_index);
  if (spec.fixed_window()) {
    out += ",from=" + std::to_string(spec.window_from) +
           ",to=" + std::to_string(spec.window_to);
  } else {
    out += ",mtbf=" + std::to_string(spec.mtbf_steps) +
           ",mttr=" + std::to_string(spec.mttr_steps) +
           ",seed=" + std::to_string(spec.seed);
    if (spec.distribution == FaultDistribution::kWeibull) {
      out += ",dist=weibull,shape=" + std::to_string(spec.weibull_shape);
    }
  }
  if (spec.kind == FaultKind::kCapacityLoss) {
    out += ",keep=" + std::to_string(spec.severity);
  } else if (spec.kind == FaultKind::kLatencyDegradation) {
    out += ",classes=" + std::to_string(static_cast<int>(spec.severity));
  }
  return out;
}

}  // namespace mmog::fault
