#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace mmog::fault {

/// The failure shapes the injection layer can produce. The paper's §V
/// failure discussion assumes an all-or-nothing data-center loss; real
/// rented capacity also fails *partially* (a hoster loses racks, a peering
/// link degrades, an accepted request never materializes), which is what
/// separates the simulator from a provisioning system.
enum class FaultKind {
  kOutage = 0,       ///< the center grants nothing; hosted allocations die
  kCapacityLoss = 1, ///< the center keeps only `severity` of its capacity
  kLatencyDegradation = 2, ///< effective distance class worsens by `severity`
  kGrantFlap = 3,    ///< accepted requests fail to materialize (grants only)
};

inline constexpr std::size_t kFaultKindCount = 4;

std::string_view fault_kind_name(FaultKind k) noexcept;

/// One concrete fault window on one data center: active during
/// [from_step, to_step). `severity` is kind-specific:
///   kOutage / kGrantFlap        — unused (1.0)
///   kCapacityLoss               — fraction of capacity *kept*, in (0, 1)
///   kLatencyDegradation         — distance classes added, >= 1
struct FaultEvent {
  FaultKind kind = FaultKind::kOutage;
  std::size_t dc_index = 0;
  std::size_t from_step = 0;
  std::size_t to_step = 0;
  double severity = 1.0;

  bool active_at(std::size_t step) const noexcept {
    return step >= from_step && step < to_step;
  }

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Distribution of the up-time (time-between-failures) and repair-time
/// draws. Exponential is the classic memoryless MTBF model; Weibull with
/// shape < 1 models infant-mortality-like burstiness and shape > 1 wear-out
/// clustering.
enum class FaultDistribution {
  kExponential = 0,
  kWeibull = 1,
};

/// A stochastic fault process on one data center, or (when `window` is set)
/// one hand-scheduled window. Generation is deterministic: the same spec
/// always produces the same schedule.
struct FaultSpec {
  FaultKind kind = FaultKind::kOutage;
  std::size_t dc_index = 0;
  /// Mean steps between the end of one fault and the start of the next.
  double mtbf_steps = 0.0;
  /// Mean fault duration in steps.
  double mttr_steps = 0.0;
  FaultDistribution distribution = FaultDistribution::kExponential;
  double weibull_shape = 1.0;  ///< Weibull shape k (> 0); 1 == exponential
  double severity = 1.0;       ///< kind-specific, see FaultEvent
  std::uint64_t seed = 0;
  /// Fixed window [first, second): when second > first the spec is
  /// deterministic and mtbf/mttr/seed are ignored.
  std::size_t window_from = 0;
  std::size_t window_to = 0;

  bool fixed_window() const noexcept { return window_to > window_from; }
};

/// Throws std::invalid_argument (with the offending field named) when the
/// spec is internally inconsistent or its dc_index is outside [0, n_dcs).
void validate(const FaultSpec& spec, std::size_t n_dcs);

/// Expands one spec into its fault windows over [0, horizon_steps), clamped
/// to the horizon. Deterministic for a fixed spec.
std::vector<FaultEvent> generate_events(const FaultSpec& spec,
                                        std::size_t horizon_steps);

/// The full fault schedule of one simulation run: every fault window of
/// every data center, queryable per (dc, step). Immutable once built.
class FaultSchedule {
 public:
  FaultSchedule() = default;

  /// Validates and expands `specs` over [0, horizon_steps), appends
  /// `fixed_events` (already-concrete windows, e.g. legacy outage configs),
  /// and indexes everything per data center.
  static FaultSchedule generate(const std::vector<FaultSpec>& specs,
                                std::size_t n_dcs, std::size_t horizon_steps,
                                std::vector<FaultEvent> fixed_events = {});

  bool empty() const noexcept { return all_.empty(); }

  /// All events, sorted by (from_step, dc_index, kind).
  const std::vector<FaultEvent>& events() const noexcept { return all_; }

  /// A full outage is active on `dc` at `step`.
  bool outage_at(std::size_t dc, std::size_t step) const noexcept;

  /// New grants at `dc` fail at `step` (outage or grant flap).
  bool grants_blocked_at(std::size_t dc, std::size_t step) const noexcept;

  /// A grant flap (but not necessarily an outage) is active.
  bool flap_at(std::size_t dc, std::size_t step) const noexcept;

  /// Fraction of the center's capacity available at `step`: 1.0 when
  /// healthy, the minimum of the active capacity-loss severities otherwise.
  double capacity_fraction_at(std::size_t dc, std::size_t step) const noexcept;

  /// Distance classes to add to the center's effective latency at `step`
  /// (maximum over active latency-degradation events; 0 when healthy).
  std::size_t latency_penalty_at(std::size_t dc,
                                 std::size_t step) const noexcept;

 private:
  std::vector<std::vector<FaultEvent>> per_dc_;
  std::vector<FaultEvent> all_;
};

}  // namespace mmog::fault
