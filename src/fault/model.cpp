#include "fault/model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace mmog::fault {
namespace {

/// One positive duration draw with the spec's distribution and the given
/// mean (in steps). Weibull is scaled so its mean equals `mean_steps`.
double draw_duration(const FaultSpec& spec, double mean_steps,
                     util::Rng& rng) {
  if (spec.distribution == FaultDistribution::kWeibull) {
    const double k = spec.weibull_shape;
    const double scale = mean_steps / std::tgamma(1.0 + 1.0 / k);
    double u = rng.uniform();
    if (u >= 1.0) u = std::nextafter(1.0, 0.0);
    return scale * std::pow(-std::log1p(-u), 1.0 / k);
  }
  return rng.exponential(1.0 / mean_steps);
}

std::size_t rounded_steps(double steps) noexcept {
  const double r = std::llround(steps);
  return static_cast<std::size_t>(std::max(1.0, r));
}

}  // namespace

std::string_view fault_kind_name(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kOutage: return "outage";
    case FaultKind::kCapacityLoss: return "capacity";
    case FaultKind::kLatencyDegradation: return "latency";
    case FaultKind::kGrantFlap: return "flap";
  }
  return "?";
}

void validate(const FaultSpec& spec, std::size_t n_dcs) {
  const std::string where =
      "fault spec (" + std::string(fault_kind_name(spec.kind)) + ")";
  if (spec.dc_index >= n_dcs) {
    throw std::invalid_argument(
        where + ": dc_index " + std::to_string(spec.dc_index) +
        " out of range (have " + std::to_string(n_dcs) + " data centers)");
  }
  if (spec.fixed_window()) {
    // window_to > window_from by definition of fixed_window().
  } else if (spec.window_from != 0 || spec.window_to != 0) {
    throw std::invalid_argument(where + ": fixed window needs from < to");
  } else {
    if (!(spec.mtbf_steps > 0.0)) {
      throw std::invalid_argument(where + ": mtbf must be > 0 steps");
    }
    if (!(spec.mttr_steps > 0.0)) {
      throw std::invalid_argument(where + ": mttr must be > 0 steps");
    }
  }
  if (spec.distribution == FaultDistribution::kWeibull &&
      !(spec.weibull_shape > 0.0)) {
    throw std::invalid_argument(where + ": weibull shape must be > 0");
  }
  if (spec.kind == FaultKind::kCapacityLoss &&
      !(spec.severity > 0.0 && spec.severity < 1.0)) {
    throw std::invalid_argument(
        where + ": capacity fraction kept must be in (0, 1)");
  }
  if (spec.kind == FaultKind::kLatencyDegradation && !(spec.severity >= 1.0)) {
    throw std::invalid_argument(
        where + ": latency degradation must add >= 1 distance class");
  }
}

std::vector<FaultEvent> generate_events(const FaultSpec& spec,
                                        std::size_t horizon_steps) {
  std::vector<FaultEvent> events;
  if (spec.fixed_window()) {
    if (spec.window_from < horizon_steps) {
      events.push_back({spec.kind, spec.dc_index, spec.window_from,
                        std::min(spec.window_to, horizon_steps),
                        spec.severity});
    }
    return events;
  }
  // Decorrelate specs sharing a seed but differing in target or kind.
  util::Rng rng(spec.seed ^ (0x9e3779b97f4a7c15ULL * (spec.dc_index + 1)) ^
                (0xbf58476d1ce4e5b9ULL *
                 (static_cast<std::uint64_t>(spec.kind) + 1)));
  std::size_t t = rounded_steps(draw_duration(spec, spec.mtbf_steps, rng));
  while (t < horizon_steps) {
    const std::size_t dur =
        rounded_steps(draw_duration(spec, spec.mttr_steps, rng));
    events.push_back({spec.kind, spec.dc_index, t,
                      std::min(t + dur, horizon_steps), spec.severity});
    t += dur + rounded_steps(draw_duration(spec, spec.mtbf_steps, rng));
  }
  return events;
}

FaultSchedule FaultSchedule::generate(const std::vector<FaultSpec>& specs,
                                      std::size_t n_dcs,
                                      std::size_t horizon_steps,
                                      std::vector<FaultEvent> fixed_events) {
  FaultSchedule schedule;
  schedule.per_dc_.resize(n_dcs);
  auto add = [&](FaultEvent ev) {
    if (ev.dc_index >= n_dcs) {
      throw std::invalid_argument("fault event: dc_index " +
                                  std::to_string(ev.dc_index) +
                                  " out of range (have " +
                                  std::to_string(n_dcs) + " data centers)");
    }
    if (ev.from_step >= ev.to_step) {
      throw std::invalid_argument(
          "fault event: window must satisfy from_step < to_step (got [" +
          std::to_string(ev.from_step) + ", " + std::to_string(ev.to_step) +
          "))");
    }
    schedule.all_.push_back(ev);
  };
  for (const auto& spec : specs) {
    validate(spec, n_dcs);
    for (const auto& ev : generate_events(spec, horizon_steps)) add(ev);
  }
  for (auto& ev : fixed_events) {
    // Legacy windows may extend past the horizon; clamp, drop what starts
    // beyond it (not malformed — the horizon depends on the run length).
    if (ev.from_step >= ev.to_step) {
      throw std::invalid_argument(
          "fault event: window must satisfy from_step < to_step (got [" +
          std::to_string(ev.from_step) + ", " + std::to_string(ev.to_step) +
          "))");
    }
    if (ev.dc_index >= n_dcs) {
      throw std::invalid_argument("fault event: dc_index " +
                                  std::to_string(ev.dc_index) +
                                  " out of range (have " +
                                  std::to_string(n_dcs) + " data centers)");
    }
    if (ev.from_step >= horizon_steps) continue;
    ev.to_step = std::min(ev.to_step, horizon_steps);
    schedule.all_.push_back(ev);
  }
  std::stable_sort(schedule.all_.begin(), schedule.all_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     if (a.from_step != b.from_step) {
                       return a.from_step < b.from_step;
                     }
                     if (a.dc_index != b.dc_index) {
                       return a.dc_index < b.dc_index;
                     }
                     return static_cast<int>(a.kind) <
                            static_cast<int>(b.kind);
                   });
  for (const auto& ev : schedule.all_) {
    schedule.per_dc_[ev.dc_index].push_back(ev);
  }
  return schedule;
}

bool FaultSchedule::outage_at(std::size_t dc,
                              std::size_t step) const noexcept {
  if (dc >= per_dc_.size()) return false;
  for (const auto& ev : per_dc_[dc]) {
    if (ev.kind == FaultKind::kOutage && ev.active_at(step)) return true;
  }
  return false;
}

bool FaultSchedule::flap_at(std::size_t dc, std::size_t step) const noexcept {
  if (dc >= per_dc_.size()) return false;
  for (const auto& ev : per_dc_[dc]) {
    if (ev.kind == FaultKind::kGrantFlap && ev.active_at(step)) return true;
  }
  return false;
}

bool FaultSchedule::grants_blocked_at(std::size_t dc,
                                      std::size_t step) const noexcept {
  return outage_at(dc, step) || flap_at(dc, step);
}

double FaultSchedule::capacity_fraction_at(std::size_t dc,
                                           std::size_t step) const noexcept {
  double fraction = 1.0;
  if (dc >= per_dc_.size()) return fraction;
  for (const auto& ev : per_dc_[dc]) {
    if (ev.kind == FaultKind::kCapacityLoss && ev.active_at(step)) {
      fraction = std::min(fraction, ev.severity);
    }
  }
  return fraction;
}

std::size_t FaultSchedule::latency_penalty_at(std::size_t dc,
                                              std::size_t step) const noexcept {
  std::size_t penalty = 0;
  if (dc >= per_dc_.size()) return penalty;
  for (const auto& ev : per_dc_[dc]) {
    if (ev.kind == FaultKind::kLatencyDegradation && ev.active_at(step)) {
      penalty = std::max(penalty, static_cast<std::size_t>(ev.severity));
    }
  }
  return penalty;
}

}  // namespace mmog::fault
