#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "fault/model.hpp"

namespace mmog::fault {

/// Parses a duration into 2-minute simulation steps. Accepts a plain
/// number (steps) or a number with one of the suffixes s/m/h/d/w
/// ("90s", "30m", "2h", "4d", "1w"). Throws std::invalid_argument on
/// malformed input or non-positive durations (zero is accepted only with
/// `allow_zero`, for window start offsets).
double parse_duration_steps(std::string_view text, bool allow_zero = false);

/// Parses one fault directive of the form
///
///   kind:key=value,key=value,...
///
/// with kind in {outage, capacity, latency, flap} and keys
///
///   dc=N          target data-center index (required)
///   mtbf=DUR      mean time between faults (stochastic form)
///   mttr=DUR      mean fault duration (stochastic form)
///   from=DUR to=DUR   fixed window (alternative to mtbf/mttr)
///   seed=N        generator seed (default 0)
///   dist=exp|weibull  up/repair-time distribution (default exp)
///   shape=F       Weibull shape k (default 1)
///   keep=F        capacity: fraction of capacity kept, in (0,1)
///   classes=N     latency: distance classes added (>= 1)
///   severity=F    generic alias for keep/classes
///
/// e.g. "outage:dc=2,mtbf=4d,mttr=2h,seed=9". Durations use
/// parse_duration_steps. Throws std::invalid_argument with the offending
/// token named.
FaultSpec parse_fault_spec(std::string_view text);

/// Parses a ';'-separated list of fault directives (empty input -> empty).
std::vector<FaultSpec> parse_fault_specs(std::string_view text);

/// Compact round-trippable description, for logs and tables.
std::string describe(const FaultSpec& spec);

}  // namespace mmog::fault
