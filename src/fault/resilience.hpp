#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <vector>

namespace mmog::fault {

/// How the operator loop reacts to injected faults. Disabled by default:
/// the simulator then behaves exactly as before this layer existed (a
/// force-released allocation is only re-placed by the *next* step's
/// regular matching pass).
struct ResiliencePolicy {
  /// Master switch for same-step re-placement, backoff bookkeeping,
  /// standby reserve and shedding.
  bool enabled = false;
  /// First exclusion window after a center fails a request, in steps;
  /// doubles per consecutive failure up to `max_backoff_steps`.
  std::size_t base_backoff_steps = 1;
  std::size_t max_backoff_steps = 32;
  /// N+k standby reserve: extra fully-loaded reference servers requested
  /// per demand unit on top of the padded prediction, so the loss of up to
  /// k servers' worth of capacity is absorbed without a shortfall.
  double standby_reserve_servers = 0.0;
  /// Graceful degradation: when a request cannot be placed anywhere in
  /// tolerance, force-release allocations of strictly lower-priority games
  /// (lowest priority first) to make room.
  bool shed_low_priority = false;
};

/// Per-request retry bookkeeping: which data centers recently failed a
/// request stream, and until when they are excluded from its candidate
/// walk. Exponential backoff per center — the first failure excludes the
/// center for `base` steps, each consecutive failure doubles the window up
/// to `max`; one successful grant resets it.
class BackoffTracker {
 public:
  explicit BackoffTracker(std::size_t base_steps = 1,
                          std::size_t max_steps = 32) noexcept
      : base_(base_steps == 0 ? 1 : base_steps),
        max_(max_steps < base_ ? base_ : max_steps) {}

  /// Records a failed grant (or a force-release) observed at `step`.
  /// Returns the exclusive end of the resulting exclusion window — the
  /// first step at which `dc` becomes eligible again — so callers (the
  /// decision audit trail) can report *until when* the center is out.
  std::size_t record_failure(std::size_t dc, std::size_t step);

  /// A successful grant clears the center's failure history.
  void record_success(std::size_t dc) noexcept;

  /// True while `dc` is inside its exclusion window at `step`.
  bool excluded(std::size_t dc, std::size_t step) const noexcept;

  /// Consecutive failures recorded for `dc` (0 when clear).
  std::size_t failures(std::size_t dc) const noexcept;

  /// First step at which `dc` becomes eligible again (0 when not excluded).
  std::size_t excluded_until(std::size_t dc) const noexcept;

  /// One center's exclusion record, exposed for checkpointing.
  struct EntryView {
    std::size_t dc = 0;
    std::size_t failures = 0;
    std::size_t until = 0;  ///< exclusive end of the exclusion window
  };

  /// All entries in ascending `dc` order.
  std::vector<EntryView> entries() const;

  /// Replaces the failure history with checkpointed entries; base/max stay
  /// as constructed (they come from the ResiliencePolicy, not the state).
  void restore_entries(std::span<const EntryView> entries);

 private:
  struct Entry {
    std::size_t failures = 0;
    std::size_t until = 0;  ///< exclusive end of the exclusion window
  };
  std::map<std::size_t, Entry> entries_;
  std::size_t base_;
  std::size_t max_;
};

}  // namespace mmog::fault
