#include "fault/resilience.hpp"

#include <algorithm>

namespace mmog::fault {

std::size_t BackoffTracker::record_failure(std::size_t dc,
                                           std::size_t step) {
  Entry& e = entries_[dc];
  ++e.failures;
  std::size_t window = base_;
  for (std::size_t i = 1; i < e.failures && window < max_; ++i) window *= 2;
  window = std::min(window, max_);
  e.until = std::max(e.until, step + window);
  return e.until;
}

void BackoffTracker::record_success(std::size_t dc) noexcept {
  entries_.erase(dc);
}

bool BackoffTracker::excluded(std::size_t dc,
                              std::size_t step) const noexcept {
  const auto it = entries_.find(dc);
  return it != entries_.end() && step < it->second.until;
}

std::size_t BackoffTracker::failures(std::size_t dc) const noexcept {
  const auto it = entries_.find(dc);
  return it == entries_.end() ? 0 : it->second.failures;
}

std::size_t BackoffTracker::excluded_until(std::size_t dc) const noexcept {
  const auto it = entries_.find(dc);
  return it == entries_.end() ? 0 : it->second.until;
}

std::vector<BackoffTracker::EntryView> BackoffTracker::entries() const {
  std::vector<EntryView> out;
  out.reserve(entries_.size());
  for (const auto& [dc, e] : entries_) {
    out.push_back({dc, e.failures, e.until});
  }
  return out;
}

void BackoffTracker::restore_entries(std::span<const EntryView> entries) {
  entries_.clear();
  for (const auto& e : entries) {
    entries_[e.dc] = Entry{e.failures, e.until};
  }
}

}  // namespace mmog::fault
