#include "net/session.hpp"

#include <algorithm>
#include <cmath>

namespace mmog::net {
namespace {

/// A mixture component: lognormal with clamping to [min, max].
struct Component {
  double weight = 1.0;
  double mu = 0.0;     ///< log-scale location
  double sigma = 0.3;  ///< log-scale spread
  double min = 0.0;
  double max = 1e9;
};

struct ClassModel {
  std::vector<Component> length_bytes;
  std::vector<Component> iat_ms;
};

double draw(const std::vector<Component>& mix, util::Rng& rng) {
  // Inline weighted choice: this runs twice per emulated packet, so avoid
  // materializing a weights vector on every call.
  double total = 0.0;
  for (const auto& c : mix) total += c.weight;
  double r = rng.uniform() * total;
  const Component* chosen = &mix.back();
  for (const auto& c : mix) {
    if (r < c.weight) {
      chosen = &c;
      break;
    }
    r -= c.weight;
  }
  return std::clamp(rng.lognormal(chosen->mu, chosen->sigma), chosen->min,
                    chosen->max);
}

/// Distribution parameters per interaction class, shaped to reproduce the
/// qualitative orderings of Fig 4:
///  - fast-paced play: small IAT (packets as often as possible), sizes
///    moderate-to-large, independent of crowding;
///  - p2p market: long think-time IAT component; p2p crowded: same sizes,
///    clearly shorter IATs;
///  - group interaction: the lowest IATs *and* the largest packets (more
///    objects per update);
///  - new-content traces: intermediate, with the crowded variant larger.
const ClassModel& model_for(InteractionClass cls) {
  static const ClassModel creating = {
      {{0.5, std::log(70.0), 0.35, 40, 500}, {0.5, std::log(160.0), 0.5, 40, 500}},
      {{0.7, std::log(120.0), 0.6, 5, 600}, {0.3, std::log(320.0), 0.5, 5, 600}}};
  static const ClassModel fast = {
      {{0.3, std::log(90.0), 0.3, 40, 500}, {0.7, std::log(200.0), 0.45, 40, 500}},
      {{0.9, std::log(45.0), 0.35, 5, 600}, {0.1, std::log(110.0), 0.4, 5, 600}}};
  static const ClassModel market = {
      {{0.6, std::log(80.0), 0.4, 40, 500}, {0.4, std::log(150.0), 0.5, 40, 500}},
      {{0.45, std::log(150.0), 0.5, 5, 600}, {0.55, std::log(420.0), 0.35, 5, 600}}};
  static const ClassModel p2p_crowded = {
      {{0.6, std::log(85.0), 0.4, 40, 500}, {0.4, std::log(155.0), 0.5, 40, 500}},
      {{0.7, std::log(110.0), 0.5, 5, 600}, {0.3, std::log(260.0), 0.4, 5, 600}}};
  static const ClassModel group = {
      {{0.25, std::log(110.0), 0.3, 40, 500}, {0.75, std::log(280.0), 0.4, 40, 500}},
      {{0.95, std::log(38.0), 0.35, 5, 600}, {0.05, std::log(90.0), 0.4, 5, 600}}};
  static const ClassModel nc_noncrowded = {
      {{0.55, std::log(75.0), 0.35, 40, 500}, {0.45, std::log(170.0), 0.5, 40, 500}},
      {{0.7, std::log(130.0), 0.55, 5, 600}, {0.3, std::log(300.0), 0.45, 5, 600}}};
  static const ClassModel nc_crowded = {
      {{0.4, std::log(90.0), 0.35, 40, 500}, {0.6, std::log(210.0), 0.45, 40, 500}},
      {{0.8, std::log(80.0), 0.5, 5, 600}, {0.2, std::log(200.0), 0.4, 5, 600}}};
  static const ClassModel nc_locks = {
      {{0.45, std::log(85.0), 0.35, 40, 500}, {0.55, std::log(180.0), 0.45, 40, 500}},
      {{0.85, std::log(55.0), 0.4, 5, 600}, {0.15, std::log(130.0), 0.4, 5, 600}}};
  switch (cls) {
    case InteractionClass::kCreatingContent: return creating;
    case InteractionClass::kFastPaced: return fast;
    case InteractionClass::kP2PMarket: return market;
    case InteractionClass::kP2PCrowded: return p2p_crowded;
    case InteractionClass::kGroupInteraction: return group;
    case InteractionClass::kNewContentNonCrowded: return nc_noncrowded;
    case InteractionClass::kNewContentCrowded: return nc_crowded;
    case InteractionClass::kNewContentLocks: return nc_locks;
  }
  return creating;
}

}  // namespace

std::vector<double> SessionTrace::lengths() const {
  std::vector<double> out;
  out.reserve(packets.size());
  for (const auto& p : packets) {
    out.push_back(static_cast<double>(p.length_bytes));
  }
  return out;
}

std::vector<double> SessionTrace::inter_arrival_ms() const {
  std::vector<double> out;
  if (packets.size() < 2) return out;
  out.reserve(packets.size() - 1);
  for (std::size_t i = 1; i < packets.size(); ++i) {
    out.push_back((packets[i].timestamp_s - packets[i - 1].timestamp_s) * 1e3);
  }
  return out;
}

double SessionTrace::mean_bandwidth_bps() const {
  if (packets.size() < 2) return 0.0;
  const double span = packets.back().timestamp_s - packets.front().timestamp_s;
  if (span <= 0.0) return 0.0;
  double bytes = 0.0;
  for (const auto& p : packets) bytes += static_cast<double>(p.length_bytes);
  return bytes / span;
}

SessionTrace emulate_session(const SessionConfig& config) {
  util::Rng rng(config.seed);
  const ClassModel& model = model_for(config.interaction);
  SessionTrace trace;
  trace.name = config.name;
  trace.interaction = config.interaction;
  double t = 0.0;
  while (t < config.duration_seconds) {
    PacketRecord p;
    p.timestamp_s = t;
    p.length_bytes = static_cast<std::size_t>(draw(model.length_bytes, rng));
    trace.packets.push_back(p);
    t += draw(model.iat_ms, rng) / 1e3;
  }
  return trace;
}

std::vector<SessionConfig> fig4_sessions(std::uint64_t base_seed) {
  return {
      {"Trace 0: non-crowded+creating content",
       InteractionClass::kCreatingContent, 1200.0, base_seed + 0},
      {"Trace 1: non-crowded+fast paced", InteractionClass::kFastPaced, 900.0,
       base_seed + 1},
      {"Trace 2: semi-crowded+p2p interaction", InteractionClass::kP2PMarket,
       1800.0, base_seed + 2},
      {"Trace 3: crowded+p2p interaction", InteractionClass::kP2PCrowded,
       1800.0, base_seed + 3},
      {"Trace 4: group interaction", InteractionClass::kGroupInteraction,
       900.0, base_seed + 4},
      {"Trace 5a: new content+crowded", InteractionClass::kNewContentCrowded,
       1500.0, base_seed + 5},
      {"Trace 5b: new content+crowded", InteractionClass::kNewContentCrowded,
       1500.0, base_seed + 6},
      {"Trace 6: crowded+fast paced", InteractionClass::kFastPaced, 900.0,
       base_seed + 7},
      {"Trace 7: new content+locks", InteractionClass::kNewContentLocks,
       1200.0, base_seed + 8},
  };
}

double expected_packet_length(InteractionClass c) {
  // Fixed-seed Monte-Carlo estimate of a model constant, not simulation
  // state: any seed gives the same expectation to within the sample error.
  util::Rng rng(12345);  // mmog-lint: allow(seed-literal)
  const auto& model = model_for(c);
  double s = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) s += draw(model.length_bytes, rng);
  return s / kSamples;
}

double expected_iat_ms(InteractionClass c) {
  // Same fixed-seed Monte-Carlo constant as expected_packet_length.
  util::Rng rng(54321);  // mmog-lint: allow(seed-literal)
  const auto& model = model_for(c);
  double s = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) s += draw(model.iat_ms, rng);
  return s / kSamples;
}

}  // namespace mmog::net
