#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace mmog::net {

/// Interaction classes observed in the paper's eight tcpdump session traces
/// (§III-D / Fig 4). The class determines the packet-size and
/// inter-arrival-time distributions of the server's downstream stream.
enum class InteractionClass {
  kCreatingContent,      ///< T0: non-crowded, player creating content
  kFastPaced,            ///< T1/T6: fast-paced minigame — small IAT always
  kP2PMarket,            ///< T2: market trading — long think-time IATs
  kP2PCrowded,           ///< T3: crowded p2p — T2-like sizes, shorter IAT
  kGroupInteraction,     ///< T4: groups interacting — low IAT, large packets
  kNewContentNonCrowded, ///< new content, few players around
  kNewContentCrowded,    ///< T5a/T5b: new content, crowded
  kNewContentLocks,      ///< T7: new content with update locks — T1-like IAT
};

/// Configuration of one emulated game session capture.
struct SessionConfig {
  std::string name = "Trace";
  InteractionClass interaction = InteractionClass::kCreatingContent;
  double duration_seconds = 600.0;  ///< paper: 5 minutes to 1 hour
  std::uint64_t seed = 7;
};

/// One captured packet: arrival time and wire length.
struct PacketRecord {
  double timestamp_s = 0.0;
  std::size_t length_bytes = 0;
};

/// An emulated session capture, the analogue of one tcpdump trace.
struct SessionTrace {
  std::string name;
  InteractionClass interaction = InteractionClass::kCreatingContent;
  std::vector<PacketRecord> packets;

  /// Packet lengths in bytes.
  std::vector<double> lengths() const;

  /// Inter-arrival times between consecutive packets, in milliseconds.
  std::vector<double> inter_arrival_ms() const;

  /// Mean downstream bandwidth over the capture, bytes/second.
  double mean_bandwidth_bps() const;
};

/// Emulates one session capture of the given class.
SessionTrace emulate_session(const SessionConfig& config);

/// The Fig 4 session set: T0-T7 plus the consecutive T5a/T5b pair collected
/// from the same environment (the paper's validation of measurement
/// stability).
std::vector<SessionConfig> fig4_sessions(std::uint64_t base_seed = 7000);

/// Mean packet length (bytes) implied by a class's distribution, estimated
/// by Monte-Carlo; exposed so load models can derive bandwidth per player.
double expected_packet_length(InteractionClass c);

/// Mean packet inter-arrival (ms) implied by a class's distribution.
double expected_iat_ms(InteractionClass c);

}  // namespace mmog::net
