#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "predict/predictor.hpp"

namespace mmog::predict {

/// Holt's double exponential smoothing: level + trend. An extension beyond
/// the paper's line-up that directly addresses where simple smoothing loses
/// (§V-B): it extrapolates sustained ramps instead of lagging them.
class HoltPredictor final : public Predictor {
 public:
  /// alpha = level smoothing, beta = trend smoothing; both in (0, 1].
  /// Throws std::invalid_argument otherwise.
  explicit HoltPredictor(double alpha = 0.5, double beta = 0.2);

  std::string_view name() const noexcept override { return "Holt"; }
  void observe(double value) override;
  double predict() const override;
  std::unique_ptr<Predictor> make_fresh() const override;
  void save_state(std::vector<double>& out) const override;
  void load_state(std::span<const double> in) override;

  double level() const noexcept { return level_; }
  double trend() const noexcept { return trend_; }

 private:
  double alpha_;
  double beta_;
  double level_ = 0.0;
  double trend_ = 0.0;
  std::size_t observed_ = 0;
};

/// Holt-Winters additive triple exponential smoothing: level + trend +
/// season. MMOG load is strongly diurnal (§III-C: a 24 h autocorrelation
/// peak), which makes the seasonal term a natural fit: with 2-minute
/// samples, season_length = 720 tracks the daily cycle.
class HoltWintersPredictor final : public Predictor {
 public:
  /// gamma = seasonal smoothing. The seasonal terms initialize from the
  /// first full season of observations; until then the predictor behaves
  /// like Holt's method. Throws std::invalid_argument on bad parameters or
  /// season_length == 0.
  explicit HoltWintersPredictor(std::size_t season_length = 720,
                                double alpha = 0.4, double beta = 0.05,
                                double gamma = 0.3);

  std::string_view name() const noexcept override { return "Holt-Winters"; }
  void observe(double value) override;
  double predict() const override;
  std::unique_ptr<Predictor> make_fresh() const override;
  void save_state(std::vector<double>& out) const override;
  void load_state(std::span<const double> in) override;

  bool seasonal_ready() const noexcept { return seasonal_ready_; }
  std::size_t season_length() const noexcept { return season_; }

 private:
  std::size_t season_;
  double alpha_;
  double beta_;
  double gamma_;
  double level_ = 0.0;
  double trend_ = 0.0;
  std::vector<double> seasonal_;
  std::deque<double> first_season_;  ///< buffer until initialization
  std::size_t observed_ = 0;
  bool seasonal_ready_ = false;
};

/// The drift method: last value plus the average historical slope — the
/// canonical baseline between Last value and full trend models.
class DriftPredictor final : public Predictor {
 public:
  std::string_view name() const noexcept override { return "Drift"; }
  void observe(double value) override;
  double predict() const override;
  std::unique_ptr<Predictor> make_fresh() const override {
    return std::make_unique<DriftPredictor>();
  }
  void save_state(std::vector<double>& out) const override;
  void load_state(std::span<const double> in) override;

 private:
  double first_ = 0.0;
  double last_ = 0.0;
  std::size_t observed_ = 0;
};

}  // namespace mmog::predict
