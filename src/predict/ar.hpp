#pragma once

#include <memory>
#include <span>
#include <vector>

#include "predict/predictor.hpp"
#include "util/ring_buffer.hpp"
#include "util/timeseries.hpp"

namespace mmog::predict {

/// Autoregressive AR(p) model fitted by the Yule-Walker equations.
///
/// This is an *extension* beyond the paper's evaluation: §IV-A names the
/// AR/ARMA family as "more elaborated" but "ill suited for MMOGs" because of
/// fitting cost, and does not benchmark it. We fit offline (like the neural
/// predictor's training phase) so the online cost stays O(p) per prediction,
/// which lets the claim be tested empirically (see bench/ablation_ar).
class ArModel {
 public:
  /// Fits AR(p) coefficients to the pooled histories. Throws
  /// std::invalid_argument when the data cannot support the order.
  static ArModel fit(std::size_t order,
                     std::span<const util::TimeSeries> histories);

  /// Predicts the next value from the most recent raw samples.
  double predict_next(std::span<const double> recent) const;

  /// Same prediction over a history split into two contiguous pieces whose
  /// logical concatenation is `older` then `newer` — the shape a wrapped
  /// util::RingBuffer exposes, so the online hot path never copies its
  /// window into a temporary.
  double predict_next(std::span<const double> older,
                      std::span<const double> newer) const;

  std::size_t order() const noexcept { return coeffs_.size(); }
  std::span<const double> coefficients() const noexcept { return coeffs_; }
  double mean() const noexcept { return mean_; }

 private:
  ArModel(std::vector<double> coeffs, double mean);

  std::vector<double> coeffs_;  ///< phi_1 .. phi_p
  double mean_ = 0.0;
};

/// Online per-zone wrapper sharing a fitted ArModel. The recent-sample
/// window lives in a fixed-capacity ring buffer sized to the model order,
/// so observe() and predict() are allocation-free — one prediction per
/// group per 2-minute step is the provisioning loop's hot path.
class ArPredictor final : public Predictor {
 public:
  explicit ArPredictor(std::shared_ptr<const ArModel> model);

  std::string_view name() const noexcept override { return "AR"; }
  void observe(double value) override;
  double predict() const override;
  std::unique_ptr<Predictor> make_fresh() const override;
  /// The window is saved oldest-first and restored by re-pushing, which
  /// normalizes the ring's internal split; predictions stay bit-identical
  /// because ArModel::predict_next walks the logical window by index.
  void save_state(std::vector<double>& out) const override;
  void load_state(std::span<const double> in) override;

 private:
  std::shared_ptr<const ArModel> model_;
  util::RingBuffer<double> history_;
};

}  // namespace mmog::predict
