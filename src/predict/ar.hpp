#pragma once

#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "predict/predictor.hpp"
#include "util/timeseries.hpp"

namespace mmog::predict {

/// Autoregressive AR(p) model fitted by the Yule-Walker equations.
///
/// This is an *extension* beyond the paper's evaluation: §IV-A names the
/// AR/ARMA family as "more elaborated" but "ill suited for MMOGs" because of
/// fitting cost, and does not benchmark it. We fit offline (like the neural
/// predictor's training phase) so the online cost stays O(p) per prediction,
/// which lets the claim be tested empirically (see bench/ablation_ar).
class ArModel {
 public:
  /// Fits AR(p) coefficients to the pooled histories. Throws
  /// std::invalid_argument when the data cannot support the order.
  static ArModel fit(std::size_t order,
                     std::span<const util::TimeSeries> histories);

  /// Predicts the next value from the most recent raw samples.
  double predict_next(std::span<const double> recent) const;

  std::size_t order() const noexcept { return coeffs_.size(); }
  std::span<const double> coefficients() const noexcept { return coeffs_; }
  double mean() const noexcept { return mean_; }

 private:
  ArModel(std::vector<double> coeffs, double mean);

  std::vector<double> coeffs_;  ///< phi_1 .. phi_p
  double mean_ = 0.0;
};

/// Online per-zone wrapper sharing a fitted ArModel.
class ArPredictor final : public Predictor {
 public:
  explicit ArPredictor(std::shared_ptr<const ArModel> model);

  std::string_view name() const noexcept override { return "AR"; }
  void observe(double value) override;
  double predict() const override;
  std::unique_ptr<Predictor> make_fresh() const override;

 private:
  std::shared_ptr<const ArModel> model_;
  std::deque<double> history_;
};

}  // namespace mmog::predict
