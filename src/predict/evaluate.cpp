#include "predict/evaluate.hpp"

#include <chrono>
#include <cmath>
#include <memory>
#include <stdexcept>

namespace mmog::predict {

std::optional<double> series_prediction_error(Predictor& p,
                                              std::span<const double> series,
                                              std::size_t start) {
  if (series.size() < 2 || start == 0 || start >= series.size()) {
    throw std::invalid_argument("series_prediction_error: bad range");
  }
  for (std::size_t t = 0; t < start; ++t) p.observe(series[t]);
  double abs_err = 0.0;
  double total = 0.0;
  for (std::size_t t = start; t < series.size(); ++t) {
    const double pred = p.predict();
    abs_err += std::abs(series[t] - pred);
    total += series[t];
    p.observe(series[t]);
  }
  if (total <= 0.0) return std::nullopt;  // undefined: no demand to score
  return abs_err / total * 100.0;
}

std::optional<double> zones_prediction_error(
    const PredictorFactory& factory, std::span<const util::TimeSeries> zones,
    std::size_t start) {
  if (zones.empty()) {
    throw std::invalid_argument("zones_prediction_error: no zones");
  }
  const std::size_t steps = zones.front().size();
  if (steps < 2 || start == 0 || start >= steps) {
    throw std::invalid_argument("zones_prediction_error: bad range");
  }
  std::vector<std::unique_ptr<Predictor>> preds;
  preds.reserve(zones.size());
  for (std::size_t z = 0; z < zones.size(); ++z) {
    preds.push_back(factory());
    for (std::size_t t = 0; t < start; ++t) preds[z]->observe(zones[z][t]);
  }
  double abs_err = 0.0;
  double total = 0.0;
  for (std::size_t t = start; t < steps; ++t) {
    for (std::size_t z = 0; z < zones.size(); ++z) {
      // One (zone, step) pair is one sample of the paper's metric: the
      // un-normalized error is |actual - predicted| per sub-zone.
      abs_err += std::abs(zones[z][t] - preds[z]->predict());
      total += zones[z][t];
      preds[z]->observe(zones[z][t]);
    }
  }
  if (total <= 0.0) return std::nullopt;  // undefined: no demand to score
  return abs_err / total * 100.0;
}

std::vector<double> time_predictions(Predictor& p,
                                     std::span<const double> series,
                                     std::size_t repetitions) {
  std::vector<double> micros;
  micros.reserve(series.size() * repetitions);
  volatile double sink = 0.0;  // keep the calls observable
  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    for (double v : series) {
      p.observe(v);
      const auto t0 = std::chrono::steady_clock::now();
      sink = p.predict();
      const auto t1 = std::chrono::steady_clock::now();
      micros.push_back(
          std::chrono::duration<double, std::micro>(t1 - t0).count());
    }
  }
  (void)sink;
  return micros;
}

}  // namespace mmog::predict
