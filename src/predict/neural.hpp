#pragma once

#include <deque>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "nn/mlp.hpp"
#include "nn/preprocess.hpp"
#include "nn/train.hpp"
#include "predict/predictor.hpp"
#include "util/timeseries.hpp"

namespace mmog::predict {

/// Configuration of the paper's neural predictor (§IV-C): a three-layer
/// (6,3,1) MLP fed through polynomial signal preprocessors and min-max
/// normalization, trained offline on collected entity-count samples.
struct NeuralConfig {
  std::size_t input_window = 6;   ///< past samples fed to the network
  std::size_t hidden_units = 3;   ///< hidden-layer width
  std::size_t smoother_degree = 2;
  std::size_t smoother_window = 5;
  double train_fraction = 0.8;    ///< train/test split of the history
  nn::TrainConfig train;          ///< era-based training parameters
  std::uint64_t seed = 99;        ///< weight initialization seed
  /// Predict the *change* from the last raw sample instead of the absolute
  /// level. A small MLP trained on levels compresses its output towards the
  /// training mean; even a sub-percent level bias, correlated across every
  /// sub-zone sharing the model, systematically under-provisions the daily
  /// peaks. Delta prediction removes the level bias entirely.
  bool predict_delta = true;
  /// Feed the raw (unsmoothed) last sample as the newest of the
  /// input_window inputs. The network then sees both the denoised trend and
  /// the instantaneous deviation from it, and can learn how much of that
  /// deviation to revert — optimal filtering on noisy sub-zone counts.
  bool include_raw_input = true;
};

/// The immutable trained artifact: one low-complexity network shared by all
/// per-zone predictor instances (the data-collection and training phases of
/// §IV-C happen once, offline).
class NeuralModel {
 public:
  /// Runs the two offline phases on the collected per-zone histories:
  /// assembles (window -> next) samples from every series, splits
  /// train/test, and trains to convergence. Throws std::invalid_argument
  /// when the histories are too short to form a single sample.
  static NeuralModel fit(const NeuralConfig& config,
                         std::span<const util::TimeSeries> histories);

  /// Convenience overload for a single series.
  static NeuralModel fit(const NeuralConfig& config,
                         const util::TimeSeries& history);

  /// Predicts the next value from the most recent raw samples (at least
  /// one; shorter-than-window inputs are left-padded with the first value).
  double predict_next(std::span<const double> recent) const;

  const NeuralConfig& config() const noexcept { return config_; }
  const nn::TrainResult& train_result() const noexcept { return result_; }

  /// Writes the trained artifact as text: a magic/version line, the config,
  /// the normalizer range, the delta scale and training outcome, then the
  /// network via nn::save_mlp. Full-precision formatting makes
  /// save -> load -> save byte-identical, so checkpoints embedding a model
  /// can be compared byte-for-byte.
  void save(std::ostream& out) const;

  /// Reads a model written by save(); restoring skips the offline training
  /// phase entirely. Throws std::runtime_error on a malformed stream.
  static NeuralModel load(std::istream& in);

 private:
  NeuralModel(NeuralConfig config, nn::Mlp net,
              nn::MinMaxNormalizer normalizer, double delta_scale,
              nn::TrainResult result);

  NeuralConfig config_;
  nn::Mlp net_;
  nn::MinMaxNormalizer normalizer_;
  double delta_scale_ = 1.0;  ///< |delta| normalization (delta mode)
  nn::PolynomialSmoother smoother_;
  nn::TrainResult result_;
};

/// Online per-zone wrapper around a shared trained NeuralModel. Before any
/// observation it predicts 0; with fewer samples than the input window it
/// pads, matching NeuralModel::predict_next.
class NeuralPredictor final : public Predictor {
 public:
  explicit NeuralPredictor(std::shared_ptr<const NeuralModel> model);

  std::string_view name() const noexcept override { return "Neural"; }
  void observe(double value) override;
  double predict() const override;
  std::unique_ptr<Predictor> make_fresh() const override;
  void save_state(std::vector<double>& out) const override;
  void load_state(std::span<const double> in) override;

 private:
  std::shared_ptr<const NeuralModel> model_;
  std::deque<double> history_;
};

}  // namespace mmog::predict
