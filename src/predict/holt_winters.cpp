#include "predict/holt_winters.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace mmog::predict {

HoltPredictor::HoltPredictor(double alpha, double beta)
    : alpha_(alpha), beta_(beta) {
  if (alpha <= 0.0 || alpha > 1.0 || beta <= 0.0 || beta > 1.0) {
    throw std::invalid_argument("HoltPredictor: parameters not in (0,1]");
  }
}

void HoltPredictor::observe(double value) {
  if (observed_ == 0) {
    level_ = value;
    trend_ = 0.0;
  } else {
    const double prev_level = level_;
    level_ = alpha_ * value + (1.0 - alpha_) * (level_ + trend_);
    trend_ = beta_ * (level_ - prev_level) + (1.0 - beta_) * trend_;
  }
  ++observed_;
}

double HoltPredictor::predict() const {
  if (observed_ == 0) return 0.0;
  return std::max(0.0, level_ + trend_);
}

std::unique_ptr<Predictor> HoltPredictor::make_fresh() const {
  return std::make_unique<HoltPredictor>(alpha_, beta_);
}

void HoltPredictor::save_state(std::vector<double>& out) const {
  out.push_back(level_);
  out.push_back(trend_);
  out.push_back(static_cast<double>(observed_));
}

void HoltPredictor::load_state(std::span<const double> in) {
  if (in.size() != 3) {
    throw std::invalid_argument("HoltPredictor: bad state size");
  }
  level_ = in[0];
  trend_ = in[1];
  observed_ = static_cast<std::size_t>(in[2]);
}

HoltWintersPredictor::HoltWintersPredictor(std::size_t season_length,
                                           double alpha, double beta,
                                           double gamma)
    : season_(season_length), alpha_(alpha), beta_(beta), gamma_(gamma) {
  if (season_ == 0) {
    throw std::invalid_argument("HoltWintersPredictor: season_length == 0");
  }
  if (alpha <= 0.0 || alpha > 1.0 || beta <= 0.0 || beta > 1.0 ||
      gamma <= 0.0 || gamma > 1.0) {
    throw std::invalid_argument(
        "HoltWintersPredictor: parameters not in (0,1]");
  }
}

void HoltWintersPredictor::observe(double value) {
  if (!seasonal_ready_) {
    first_season_.push_back(value);
    // Run Holt's update so predictions are sensible during the first day.
    if (observed_ == 0) {
      level_ = value;
      trend_ = 0.0;
    } else {
      const double prev_level = level_;
      level_ = alpha_ * value + (1.0 - alpha_) * (level_ + trend_);
      trend_ = beta_ * (level_ - prev_level) + (1.0 - beta_) * trend_;
    }
    ++observed_;
    if (first_season_.size() == season_) {
      // Initialize: level = season mean, additive seasonal offsets.
      const double mean =
          std::accumulate(first_season_.begin(), first_season_.end(), 0.0) /
          static_cast<double>(season_);
      seasonal_.assign(season_, 0.0);
      for (std::size_t i = 0; i < season_; ++i) {
        seasonal_[i] = first_season_[i] - mean;
      }
      level_ = mean;
      seasonal_ready_ = true;
      first_season_.clear();
    }
    return;
  }
  const std::size_t s = observed_ % season_;
  const double prev_level = level_;
  level_ = alpha_ * (value - seasonal_[s]) +
           (1.0 - alpha_) * (level_ + trend_);
  trend_ = beta_ * (level_ - prev_level) + (1.0 - beta_) * trend_;
  seasonal_[s] = gamma_ * (value - level_) + (1.0 - gamma_) * seasonal_[s];
  ++observed_;
}

double HoltWintersPredictor::predict() const {
  if (observed_ == 0) return 0.0;
  double forecast = level_ + trend_;
  if (seasonal_ready_) {
    forecast += seasonal_[observed_ % season_];
  }
  return std::max(0.0, forecast);
}

std::unique_ptr<Predictor> HoltWintersPredictor::make_fresh() const {
  return std::make_unique<HoltWintersPredictor>(season_, alpha_, beta_,
                                                gamma_);
}

void HoltWintersPredictor::save_state(std::vector<double>& out) const {
  out.push_back(level_);
  out.push_back(trend_);
  out.push_back(static_cast<double>(observed_));
  out.push_back(seasonal_ready_ ? 1.0 : 0.0);
  out.push_back(static_cast<double>(first_season_.size()));
  out.insert(out.end(), first_season_.begin(), first_season_.end());
  out.push_back(static_cast<double>(seasonal_.size()));
  out.insert(out.end(), seasonal_.begin(), seasonal_.end());
}

void HoltWintersPredictor::load_state(std::span<const double> in) {
  if (in.size() < 5) {
    throw std::invalid_argument("HoltWintersPredictor: bad state size");
  }
  const bool ready = in[3] != 0.0;
  const auto fs_n = static_cast<std::size_t>(in[4]);
  if (fs_n >= season_ || in.size() < 6 + fs_n) {
    throw std::invalid_argument("HoltWintersPredictor: bad state size");
  }
  const auto s_n = static_cast<std::size_t>(in[5 + fs_n]);
  if ((ready && s_n != season_) || (!ready && s_n != 0) ||
      in.size() != 6 + fs_n + s_n) {
    throw std::invalid_argument("HoltWintersPredictor: bad state size");
  }
  level_ = in[0];
  trend_ = in[1];
  observed_ = static_cast<std::size_t>(in[2]);
  seasonal_ready_ = ready;
  first_season_.assign(in.begin() + 5, in.begin() + 5 + fs_n);
  seasonal_.assign(in.begin() + 6 + fs_n, in.end());
}

void DriftPredictor::observe(double value) {
  if (observed_ == 0) first_ = value;
  last_ = value;
  ++observed_;
}

double DriftPredictor::predict() const {
  if (observed_ == 0) return 0.0;
  if (observed_ == 1) return last_;
  const double slope =
      (last_ - first_) / static_cast<double>(observed_ - 1);
  return std::max(0.0, last_ + slope);
}

void DriftPredictor::save_state(std::vector<double>& out) const {
  out.push_back(first_);
  out.push_back(last_);
  out.push_back(static_cast<double>(observed_));
}

void DriftPredictor::load_state(std::span<const double> in) {
  if (in.size() != 3) {
    throw std::invalid_argument("DriftPredictor: bad state size");
  }
  first_ = in[0];
  last_ = in[1];
  observed_ = static_cast<std::size_t>(in[2]);
}

}  // namespace mmog::predict
