#include "predict/holt_winters.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace mmog::predict {

HoltPredictor::HoltPredictor(double alpha, double beta)
    : alpha_(alpha), beta_(beta) {
  if (alpha <= 0.0 || alpha > 1.0 || beta <= 0.0 || beta > 1.0) {
    throw std::invalid_argument("HoltPredictor: parameters not in (0,1]");
  }
}

void HoltPredictor::observe(double value) {
  if (observed_ == 0) {
    level_ = value;
    trend_ = 0.0;
  } else {
    const double prev_level = level_;
    level_ = alpha_ * value + (1.0 - alpha_) * (level_ + trend_);
    trend_ = beta_ * (level_ - prev_level) + (1.0 - beta_) * trend_;
  }
  ++observed_;
}

double HoltPredictor::predict() const {
  if (observed_ == 0) return 0.0;
  return std::max(0.0, level_ + trend_);
}

std::unique_ptr<Predictor> HoltPredictor::make_fresh() const {
  return std::make_unique<HoltPredictor>(alpha_, beta_);
}

HoltWintersPredictor::HoltWintersPredictor(std::size_t season_length,
                                           double alpha, double beta,
                                           double gamma)
    : season_(season_length), alpha_(alpha), beta_(beta), gamma_(gamma) {
  if (season_ == 0) {
    throw std::invalid_argument("HoltWintersPredictor: season_length == 0");
  }
  if (alpha <= 0.0 || alpha > 1.0 || beta <= 0.0 || beta > 1.0 ||
      gamma <= 0.0 || gamma > 1.0) {
    throw std::invalid_argument(
        "HoltWintersPredictor: parameters not in (0,1]");
  }
}

void HoltWintersPredictor::observe(double value) {
  if (!seasonal_ready_) {
    first_season_.push_back(value);
    // Run Holt's update so predictions are sensible during the first day.
    if (observed_ == 0) {
      level_ = value;
      trend_ = 0.0;
    } else {
      const double prev_level = level_;
      level_ = alpha_ * value + (1.0 - alpha_) * (level_ + trend_);
      trend_ = beta_ * (level_ - prev_level) + (1.0 - beta_) * trend_;
    }
    ++observed_;
    if (first_season_.size() == season_) {
      // Initialize: level = season mean, additive seasonal offsets.
      const double mean =
          std::accumulate(first_season_.begin(), first_season_.end(), 0.0) /
          static_cast<double>(season_);
      seasonal_.assign(season_, 0.0);
      for (std::size_t i = 0; i < season_; ++i) {
        seasonal_[i] = first_season_[i] - mean;
      }
      level_ = mean;
      seasonal_ready_ = true;
      first_season_.clear();
    }
    return;
  }
  const std::size_t s = observed_ % season_;
  const double prev_level = level_;
  level_ = alpha_ * (value - seasonal_[s]) +
           (1.0 - alpha_) * (level_ + trend_);
  trend_ = beta_ * (level_ - prev_level) + (1.0 - beta_) * trend_;
  seasonal_[s] = gamma_ * (value - level_) + (1.0 - gamma_) * seasonal_[s];
  ++observed_;
}

double HoltWintersPredictor::predict() const {
  if (observed_ == 0) return 0.0;
  double forecast = level_ + trend_;
  if (seasonal_ready_) {
    forecast += seasonal_[observed_ % season_];
  }
  return std::max(0.0, forecast);
}

std::unique_ptr<Predictor> HoltWintersPredictor::make_fresh() const {
  return std::make_unique<HoltWintersPredictor>(season_, alpha_, beta_,
                                                gamma_);
}

void DriftPredictor::observe(double value) {
  if (observed_ == 0) first_ = value;
  last_ = value;
  ++observed_;
}

double DriftPredictor::predict() const {
  if (observed_ == 0) return 0.0;
  if (observed_ == 1) return last_;
  const double slope =
      (last_ - first_) / static_cast<double>(observed_ - 1);
  return std::max(0.0, last_ + slope);
}

}  // namespace mmog::predict
