#include "predict/simple.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace mmog::predict {

MovingAveragePredictor::MovingAveragePredictor(std::size_t window)
    : window_(window) {
  if (window_ == 0) {
    throw std::invalid_argument("MovingAveragePredictor: window == 0");
  }
}

void MovingAveragePredictor::observe(double value) {
  values_.push_back(value);
  sum_ += value;
  if (values_.size() > window_) {
    sum_ -= values_.front();
    values_.pop_front();
  }
}

double MovingAveragePredictor::predict() const {
  if (values_.empty()) return 0.0;
  return sum_ / static_cast<double>(values_.size());
}

SlidingWindowMedianPredictor::SlidingWindowMedianPredictor(std::size_t window)
    : window_(window) {
  if (window_ == 0) {
    throw std::invalid_argument("SlidingWindowMedianPredictor: window == 0");
  }
}

void SlidingWindowMedianPredictor::observe(double value) {
  values_.push_back(value);
  if (values_.size() > window_) values_.pop_front();
}

double SlidingWindowMedianPredictor::predict() const {
  if (values_.empty()) return 0.0;
  std::vector<double> sorted(values_.begin(), values_.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  return n % 2 == 1 ? sorted[n / 2]
                    : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

ExponentialSmoothingPredictor::ExponentialSmoothingPredictor(double alpha)
    : alpha_(alpha) {
  if (alpha_ <= 0.0 || alpha_ > 1.0) {
    throw std::invalid_argument(
        "ExponentialSmoothingPredictor: alpha not in (0,1]");
  }
  name_ = "Exp. smoothing " +
          std::to_string(static_cast<int>(alpha_ * 100.0 + 0.5)) + "%";
}

void ExponentialSmoothingPredictor::observe(double value) {
  if (!primed_) {
    state_ = value;
    primed_ = true;
  } else {
    state_ = alpha_ * value + (1.0 - alpha_) * state_;
  }
}

}  // namespace mmog::predict
