#include "predict/simple.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace mmog::predict {

MovingAveragePredictor::MovingAveragePredictor(std::size_t window)
    : window_(window) {
  if (window_ == 0) {
    throw std::invalid_argument("MovingAveragePredictor: window == 0");
  }
}

void MovingAveragePredictor::observe(double value) {
  values_.push_back(value);
  sum_ += value;
  if (values_.size() > window_) {
    sum_ -= values_.front();
    values_.pop_front();
  }
}

double MovingAveragePredictor::predict() const {
  if (values_.empty()) return 0.0;
  return sum_ / static_cast<double>(values_.size());
}

void MovingAveragePredictor::save_state(std::vector<double>& out) const {
  out.push_back(sum_);
  out.push_back(static_cast<double>(values_.size()));
  out.insert(out.end(), values_.begin(), values_.end());
}

void MovingAveragePredictor::load_state(std::span<const double> in) {
  if (in.size() < 2) {
    throw std::invalid_argument("MovingAveragePredictor: bad state size");
  }
  const auto n = static_cast<std::size_t>(in[1]);
  if (n > window_ || in.size() != 2 + n) {
    throw std::invalid_argument("MovingAveragePredictor: bad state size");
  }
  sum_ = in[0];
  values_.assign(in.begin() + 2, in.end());
}

SlidingWindowMedianPredictor::SlidingWindowMedianPredictor(std::size_t window)
    : window_(window) {
  if (window_ == 0) {
    throw std::invalid_argument("SlidingWindowMedianPredictor: window == 0");
  }
}

void SlidingWindowMedianPredictor::observe(double value) {
  values_.push_back(value);
  if (values_.size() > window_) values_.pop_front();
}

double SlidingWindowMedianPredictor::predict() const {
  if (values_.empty()) return 0.0;
  std::vector<double> sorted(values_.begin(), values_.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  return n % 2 == 1 ? sorted[n / 2]
                    : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

void SlidingWindowMedianPredictor::save_state(std::vector<double>& out) const {
  out.push_back(static_cast<double>(values_.size()));
  out.insert(out.end(), values_.begin(), values_.end());
}

void SlidingWindowMedianPredictor::load_state(std::span<const double> in) {
  if (in.empty()) {
    throw std::invalid_argument("SlidingWindowMedianPredictor: bad state");
  }
  const auto n = static_cast<std::size_t>(in[0]);
  if (n > window_ || in.size() != 1 + n) {
    throw std::invalid_argument("SlidingWindowMedianPredictor: bad state");
  }
  values_.assign(in.begin() + 1, in.end());
}

ExponentialSmoothingPredictor::ExponentialSmoothingPredictor(double alpha)
    : alpha_(alpha) {
  if (alpha_ <= 0.0 || alpha_ > 1.0) {
    throw std::invalid_argument(
        "ExponentialSmoothingPredictor: alpha not in (0,1]");
  }
  name_ = "Exp. smoothing " +
          std::to_string(static_cast<int>(alpha_ * 100.0 + 0.5)) + "%";
}

void ExponentialSmoothingPredictor::observe(double value) {
  if (!primed_) {
    state_ = value;
    primed_ = true;
  } else {
    state_ = alpha_ * value + (1.0 - alpha_) * state_;
  }
}

void ExponentialSmoothingPredictor::save_state(
    std::vector<double>& out) const {
  out.push_back(state_);
  out.push_back(primed_ ? 1.0 : 0.0);
}

void ExponentialSmoothingPredictor::load_state(std::span<const double> in) {
  if (in.size() != 2 || (in[1] != 0.0 && in[1] != 1.0)) {
    throw std::invalid_argument("ExponentialSmoothingPredictor: bad state");
  }
  state_ = in[0];
  primed_ = in[1] != 0.0;
}

}  // namespace mmog::predict
