#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "predict/predictor.hpp"
#include "util/timeseries.hpp"

namespace mmog::predict {

/// The paper's prediction-error metric (§IV-D2): the ratio between the sum
/// of absolute sample prediction errors and the sum of all samples,
/// expressed as a percentage. Evaluated over samples [start, size); the
/// predictor observes (but is not scored on) the samples before `start`.
/// Returns std::nullopt when the evaluation window sums to zero demand —
/// the metric is undefined there, and reporting 0 % would silently conflate
/// "no demand" with "perfect prediction" even when the predictor was wrong
/// on every sample.
std::optional<double> series_prediction_error(Predictor& p,
                                              std::span<const double> series,
                                              std::size_t start = 1);

/// Per-sub-zone evaluation (§IV-B/§IV-D2): one fresh predictor per zone
/// series, each step predicting its zone's next entity count. Every
/// (zone, step) pair is one sample; the error is the sum of per-sample
/// absolute errors over the sum of all samples, as a percentage.
/// std::nullopt when the window's samples sum to zero (see
/// series_prediction_error).
std::optional<double> zones_prediction_error(
    const PredictorFactory& factory, std::span<const util::TimeSeries> zones,
    std::size_t start);

/// Times individual predict() calls (after observing `series` progressively)
/// and returns the per-call durations in microseconds; used by the Fig 6
/// harness to report min/quartiles/median/max.
std::vector<double> time_predictions(Predictor& p,
                                     std::span<const double> series,
                                     std::size_t repetitions = 1);

/// Name/error pair for reporting.
struct NamedError {
  std::string name;
  double error_pct = 0.0;
};

}  // namespace mmog::predict
