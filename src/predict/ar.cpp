#include "predict/ar.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace mmog::predict {
namespace {

/// Solves the symmetric Toeplitz system R phi = r (Levinson-Durbin).
std::vector<double> levinson_durbin(std::span<const double> autocov,
                                    std::size_t order) {
  std::vector<double> phi(order, 0.0);
  if (autocov.size() <= order || autocov[0] <= 0.0) {
    throw std::invalid_argument("levinson_durbin: insufficient autocovariance");
  }
  std::vector<double> prev(order, 0.0);
  double err = autocov[0];
  for (std::size_t k = 1; k <= order; ++k) {
    double acc = autocov[k];
    for (std::size_t j = 1; j < k; ++j) acc -= prev[j - 1] * autocov[k - j];
    const double reflection = acc / err;
    phi[k - 1] = reflection;
    for (std::size_t j = 1; j < k; ++j) {
      phi[j - 1] = prev[j - 1] - reflection * prev[k - 1 - j];
    }
    err *= (1.0 - reflection * reflection);
    if (err <= 1e-12) break;  // perfectly predictable; keep current phi
    std::copy(phi.begin(), phi.begin() + static_cast<std::ptrdiff_t>(k),
              prev.begin());
  }
  return phi;
}

}  // namespace

ArModel::ArModel(std::vector<double> coeffs, double mean)
    : coeffs_(std::move(coeffs)), mean_(mean) {}

ArModel ArModel::fit(std::size_t order,
                     std::span<const util::TimeSeries> histories) {
  if (order == 0) throw std::invalid_argument("ArModel: order == 0");
  // Pooled mean and autocovariances across the histories.
  double mean = 0.0;
  std::size_t count = 0;
  for (const auto& h : histories) {
    for (double v : h.values()) {
      mean += v;
      ++count;
    }
  }
  if (count <= order + 1) {
    throw std::invalid_argument("ArModel: not enough samples");
  }
  mean /= static_cast<double>(count);

  std::vector<double> autocov(order + 1, 0.0);
  for (const auto& h : histories) {
    const auto xs = h.values();
    for (std::size_t lag = 0; lag <= order; ++lag) {
      for (std::size_t t = lag; t < xs.size(); ++t) {
        autocov[lag] += (xs[t] - mean) * (xs[t - lag] - mean);
      }
    }
  }
  for (auto& c : autocov) c /= static_cast<double>(count);
  if (autocov[0] <= 0.0) {
    // Constant input: AR degenerates to predicting the mean.
    return ArModel(std::vector<double>(order, 0.0), mean);
  }
  return ArModel(levinson_durbin(autocov, order), mean);
}

double ArModel::predict_next(std::span<const double> recent) const {
  return predict_next(recent, {});
}

double ArModel::predict_next(std::span<const double> older,
                             std::span<const double> newer) const {
  const std::size_t n = older.size() + newer.size();
  if (n == 0) return mean_;
  // Logical oldest-first index into the split window.
  const auto at = [&](std::size_t i) {
    return i < older.size() ? older[i] : newer[i - older.size()];
  };
  double pred = mean_;
  for (std::size_t k = 0; k < coeffs_.size(); ++k) {
    const double x = k < n ? at(n - 1 - k) : at(0);
    pred += coeffs_[k] * (x - mean_);
  }
  return std::max(0.0, pred);
}

ArPredictor::ArPredictor(std::shared_ptr<const ArModel> model)
    : model_(std::move(model)),
      history_(model_ ? std::max<std::size_t>(1, model_->order()) : 1) {
  if (!model_) throw std::invalid_argument("ArPredictor: null model");
}

void ArPredictor::observe(double value) { history_.push(value); }

double ArPredictor::predict() const {
  if (history_.empty()) return 0.0;  // predictor contract: no data, no guess
  return model_->predict_next(history_.first(), history_.second());
}

std::unique_ptr<Predictor> ArPredictor::make_fresh() const {
  return std::make_unique<ArPredictor>(model_);
}

void ArPredictor::save_state(std::vector<double>& out) const {
  out.push_back(static_cast<double>(history_.size()));
  const auto older = history_.first();
  const auto newer = history_.second();
  out.insert(out.end(), older.begin(), older.end());
  out.insert(out.end(), newer.begin(), newer.end());
}

void ArPredictor::load_state(std::span<const double> in) {
  if (in.empty()) {
    throw std::invalid_argument("ArPredictor: bad state size");
  }
  const auto n = static_cast<std::size_t>(in[0]);
  if (n > history_.capacity() || in.size() != 1 + n) {
    throw std::invalid_argument("ArPredictor: bad state size");
  }
  history_.clear();
  for (std::size_t i = 0; i < n; ++i) history_.push(in[1 + i]);
}

}  // namespace mmog::predict
