#include "predict/neural.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace mmog::predict {

NeuralModel::NeuralModel(NeuralConfig config, nn::Mlp net,
                         nn::MinMaxNormalizer normalizer, double delta_scale,
                         nn::TrainResult result)
    : config_(config),
      net_(std::move(net)),
      normalizer_(normalizer),
      delta_scale_(delta_scale),
      smoother_(config.smoother_degree, config.smoother_window),
      result_(result) {}

NeuralModel NeuralModel::fit(const NeuralConfig& config,
                             std::span<const util::TimeSeries> histories) {
  if (config.input_window == 0) {
    throw std::invalid_argument("NeuralModel: input_window == 0");
  }
  // Global normalization range over all collected samples.
  nn::MinMaxNormalizer normalizer;
  std::vector<double> all;
  for (const auto& h : histories) {
    all.insert(all.end(), h.values().begin(), h.values().end());
  }
  if (all.empty()) throw std::invalid_argument("NeuralModel: empty history");
  normalizer.fit(all);
  // Leave headroom above the observed maximum: tanh units compress the top
  // of the fitted range, and systematic under-prediction exactly at the
  // daily peaks is what causes under-allocation events downstream.
  normalizer.update(normalizer.hi() + 0.25 * (normalizer.hi() - normalizer.lo()));

  const nn::PolynomialSmoother smoother(config.smoother_degree,
                                        config.smoother_window);

  // In delta mode the targets are per-step changes normalized by the
  // largest observed change, so the network output lives in [-1, 1].
  double delta_scale = 1.0;
  if (config.predict_delta) {
    double max_delta = 0.0;
    for (const auto& h : histories) {
      for (std::size_t t = 1; t < h.size(); ++t) {
        max_delta = std::max(max_delta, std::abs(h[t] - h[t - 1]));
      }
    }
    if (max_delta > 0.0) delta_scale = max_delta;
  }

  nn::Dataset data;
  for (const auto& h : histories) {
    if (h.size() <= config.input_window) continue;
    // Causal polynomial smoothing removes noise before windowing (§IV-C).
    const auto smoothed = smoother.smooth_series(h.values());
    for (std::size_t t = config.input_window; t < h.size(); ++t) {
      std::vector<double> in(config.input_window);
      for (std::size_t k = 0; k < config.input_window; ++k) {
        in[k] = normalizer.transform(smoothed[t - config.input_window + k]);
      }
      if (config.include_raw_input) {
        in.back() = normalizer.transform(h[t - 1]);
      }
      data.inputs.push_back(std::move(in));
      if (config.predict_delta) {
        data.targets.push_back({(h[t] - h[t - 1]) / delta_scale});
      } else {
        data.targets.push_back({normalizer.transform(h[t])});
      }
    }
  }
  if (data.empty()) {
    throw std::invalid_argument("NeuralModel: histories too short");
  }
  auto [train_set, test_set] = data.split(config.train_fraction);
  if (train_set.empty()) {
    train_set = std::move(test_set);
    test_set = {};
  }

  util::Rng rng(config.seed);
  nn::Mlp net({config.input_window, config.hidden_units, 1}, rng);
  const auto result = nn::train(net, train_set, test_set, config.train);
  return NeuralModel(config, std::move(net), normalizer, delta_scale, result);
}

NeuralModel NeuralModel::fit(const NeuralConfig& config,
                             const util::TimeSeries& history) {
  return fit(config, std::span<const util::TimeSeries>(&history, 1));
}

double NeuralModel::predict_next(std::span<const double> recent) const {
  if (recent.empty()) return 0.0;
  // Reproduce the training-time features exactly: each of the input_window
  // samples is smoothed over its own trailing smoother window. Left-pad with
  // the earliest available value when the history is short.
  const std::size_t context = config_.input_window + config_.smoother_window;
  std::vector<double> padded(context, recent.front());
  const std::size_t n = std::min(recent.size(), context);
  for (std::size_t k = 0; k < n; ++k) {
    padded[context - n + k] = recent[recent.size() - n + k];
  }
  std::vector<double> in(config_.input_window);
  for (std::size_t k = 0; k < config_.input_window; ++k) {
    const std::size_t end = context - config_.input_window + k + 1;
    const double smoothed = smoother_.smooth_last(
        std::span<const double>(padded.data(), end));
    in[k] = normalizer_.transform(smoothed);
  }
  if (config_.include_raw_input) {
    in.back() = normalizer_.transform(recent.back());
  }
  const auto out = net_.forward(in);
  // Entity counts are non-negative.
  if (config_.predict_delta) {
    return std::max(0.0, recent.back() + out[0] * delta_scale_);
  }
  return std::max(0.0, normalizer_.inverse(out[0]));
}

NeuralPredictor::NeuralPredictor(std::shared_ptr<const NeuralModel> model)
    : model_(std::move(model)) {
  if (!model_) throw std::invalid_argument("NeuralPredictor: null model");
}

void NeuralPredictor::observe(double value) {
  history_.push_back(value);
  const std::size_t keep =
      model_->config().input_window + model_->config().smoother_window;
  while (history_.size() > keep) history_.pop_front();
}

double NeuralPredictor::predict() const {
  if (history_.empty()) return 0.0;
  const std::vector<double> recent(history_.begin(), history_.end());
  return model_->predict_next(recent);
}

std::unique_ptr<Predictor> NeuralPredictor::make_fresh() const {
  return std::make_unique<NeuralPredictor>(model_);
}

}  // namespace mmog::predict
