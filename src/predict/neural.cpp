#include "predict/neural.hpp"

#include <algorithm>
#include <array>
#include <iomanip>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "nn/serialize.hpp"
#include "util/rng.hpp"

namespace mmog::predict {

NeuralModel::NeuralModel(NeuralConfig config, nn::Mlp net,
                         nn::MinMaxNormalizer normalizer, double delta_scale,
                         nn::TrainResult result)
    : config_(config),
      net_(std::move(net)),
      normalizer_(normalizer),
      delta_scale_(delta_scale),
      smoother_(config.smoother_degree, config.smoother_window),
      result_(result) {}

NeuralModel NeuralModel::fit(const NeuralConfig& config,
                             std::span<const util::TimeSeries> histories) {
  if (config.input_window == 0) {
    throw std::invalid_argument("NeuralModel: input_window == 0");
  }
  // Global normalization range over all collected samples.
  nn::MinMaxNormalizer normalizer;
  std::vector<double> all;
  for (const auto& h : histories) {
    all.insert(all.end(), h.values().begin(), h.values().end());
  }
  if (all.empty()) throw std::invalid_argument("NeuralModel: empty history");
  normalizer.fit(all);
  // Leave headroom above the observed maximum: tanh units compress the top
  // of the fitted range, and systematic under-prediction exactly at the
  // daily peaks is what causes under-allocation events downstream.
  normalizer.update(normalizer.hi() + 0.25 * (normalizer.hi() - normalizer.lo()));

  const nn::PolynomialSmoother smoother(config.smoother_degree,
                                        config.smoother_window);

  // In delta mode the targets are per-step changes normalized by the
  // largest observed change, so the network output lives in [-1, 1].
  double delta_scale = 1.0;
  if (config.predict_delta) {
    double max_delta = 0.0;
    for (const auto& h : histories) {
      for (std::size_t t = 1; t < h.size(); ++t) {
        max_delta = std::max(max_delta, std::abs(h[t] - h[t - 1]));
      }
    }
    if (max_delta > 0.0) delta_scale = max_delta;
  }

  nn::Dataset data;
  for (const auto& h : histories) {
    if (h.size() <= config.input_window) continue;
    // Causal polynomial smoothing removes noise before windowing (§IV-C).
    const auto smoothed = smoother.smooth_series(h.values());
    for (std::size_t t = config.input_window; t < h.size(); ++t) {
      std::vector<double> in(config.input_window);
      for (std::size_t k = 0; k < config.input_window; ++k) {
        in[k] = normalizer.transform(smoothed[t - config.input_window + k]);
      }
      if (config.include_raw_input) {
        in.back() = normalizer.transform(h[t - 1]);
      }
      data.inputs.push_back(std::move(in));
      if (config.predict_delta) {
        data.targets.push_back({(h[t] - h[t - 1]) / delta_scale});
      } else {
        data.targets.push_back({normalizer.transform(h[t])});
      }
    }
  }
  if (data.empty()) {
    throw std::invalid_argument("NeuralModel: histories too short");
  }
  auto [train_set, test_set] = data.split(config.train_fraction);
  if (train_set.empty()) {
    train_set = std::move(test_set);
    test_set = {};
  }

  util::Rng rng(config.seed);
  nn::Mlp net({config.input_window, config.hidden_units, 1}, rng);
  const auto result = nn::train(net, train_set, test_set, config.train);
  return NeuralModel(config, std::move(net), normalizer, delta_scale, result);
}

NeuralModel NeuralModel::fit(const NeuralConfig& config,
                             const util::TimeSeries& history) {
  return fit(config, std::span<const util::TimeSeries>(&history, 1));
}

double NeuralModel::predict_next(std::span<const double> recent) const {
  if (recent.empty()) return 0.0;
  // Reproduce the training-time features exactly: each of the input_window
  // samples is smoothed over its own trailing smoother window. Left-pad with
  // the earliest available value when the history is short.
  const std::size_t context = config_.input_window + config_.smoother_window;
  std::vector<double> padded(context, recent.front());
  const std::size_t n = std::min(recent.size(), context);
  for (std::size_t k = 0; k < n; ++k) {
    padded[context - n + k] = recent[recent.size() - n + k];
  }
  std::vector<double> in(config_.input_window);
  for (std::size_t k = 0; k < config_.input_window; ++k) {
    const std::size_t end = context - config_.input_window + k + 1;
    const double smoothed = smoother_.smooth_last(
        std::span<const double>(padded.data(), end));
    in[k] = normalizer_.transform(smoothed);
  }
  if (config_.include_raw_input) {
    in.back() = normalizer_.transform(recent.back());
  }
  const auto out = net_.forward(in);
  // Entity counts are non-negative.
  if (config_.predict_delta) {
    return std::max(0.0, recent.back() + out[0] * delta_scale_);
  }
  return std::max(0.0, normalizer_.inverse(out[0]));
}

namespace {
constexpr const char* kNeuralMagic = "mmog-neural-v1";
}

void NeuralModel::save(std::ostream& out) const {
  out << kNeuralMagic << '\n';
  out << std::setprecision(17);
  out << config_.input_window << ' ' << config_.hidden_units << ' '
      << config_.smoother_degree << ' ' << config_.smoother_window << ' '
      << config_.train_fraction << ' ' << config_.seed << ' '
      << (config_.predict_delta ? 1 : 0) << ' '
      << (config_.include_raw_input ? 1 : 0) << '\n';
  out << config_.train.max_eras << ' ' << config_.train.learning_rate << ' '
      << config_.train.momentum << ' ' << config_.train.target_rmse << ' '
      << config_.train.patience << ' ' << (config_.train.shuffle ? 1 : 0)
      << ' ' << config_.train.shuffle_seed << '\n';
  out << normalizer_.lo() << ' ' << normalizer_.hi() << ' ' << delta_scale_
      << '\n';
  out << result_.eras << ' ' << result_.train_rmse << ' '
      << result_.test_rmse << ' ' << (result_.converged ? 1 : 0) << '\n';
  nn::save_mlp(out, net_);
}

NeuralModel NeuralModel::load(std::istream& in) {
  std::string magic;
  if (!(in >> magic) || magic != kNeuralMagic) {
    throw std::runtime_error("NeuralModel::load: bad magic");
  }
  NeuralConfig config;
  int predict_delta = 0;
  int include_raw = 0;
  if (!(in >> config.input_window >> config.hidden_units >>
        config.smoother_degree >> config.smoother_window >>
        config.train_fraction >> config.seed >> predict_delta >>
        include_raw)) {
    throw std::runtime_error("NeuralModel::load: truncated config");
  }
  config.predict_delta = predict_delta != 0;
  config.include_raw_input = include_raw != 0;
  int shuffle = 0;
  if (!(in >> config.train.max_eras >> config.train.learning_rate >>
        config.train.momentum >> config.train.target_rmse >>
        config.train.patience >> shuffle >> config.train.shuffle_seed)) {
    throw std::runtime_error("NeuralModel::load: truncated train config");
  }
  config.train.shuffle = shuffle != 0;
  double lo = 0.0;
  double hi = 1.0;
  double delta_scale = 1.0;
  if (!(in >> lo >> hi >> delta_scale) || !(hi > lo)) {
    throw std::runtime_error("NeuralModel::load: bad normalizer range");
  }
  // fit() on the saved endpoints restores lo/hi exactly: the saved range
  // always satisfies hi > lo, so fit applies no adjustment.
  nn::MinMaxNormalizer normalizer;
  const std::array<double, 2> range{lo, hi};
  normalizer.fit(range);
  nn::TrainResult result;
  int converged = 0;
  if (!(in >> result.eras >> result.train_rmse >> result.test_rmse >>
        converged)) {
    throw std::runtime_error("NeuralModel::load: truncated train result");
  }
  result.converged = converged != 0;
  nn::Mlp net = nn::load_mlp(in);
  if (net.layer_sizes() !=
      std::vector<std::size_t>{config.input_window, config.hidden_units,
                               1}) {
    throw std::runtime_error("NeuralModel::load: network shape mismatch");
  }
  return NeuralModel(config, std::move(net), normalizer, delta_scale,
                     result);
}

NeuralPredictor::NeuralPredictor(std::shared_ptr<const NeuralModel> model)
    : model_(std::move(model)) {
  if (!model_) throw std::invalid_argument("NeuralPredictor: null model");
}

void NeuralPredictor::observe(double value) {
  history_.push_back(value);
  const std::size_t keep =
      model_->config().input_window + model_->config().smoother_window;
  while (history_.size() > keep) history_.pop_front();
}

double NeuralPredictor::predict() const {
  if (history_.empty()) return 0.0;
  const std::vector<double> recent(history_.begin(), history_.end());
  return model_->predict_next(recent);
}

std::unique_ptr<Predictor> NeuralPredictor::make_fresh() const {
  return std::make_unique<NeuralPredictor>(model_);
}

void NeuralPredictor::save_state(std::vector<double>& out) const {
  out.push_back(static_cast<double>(history_.size()));
  out.insert(out.end(), history_.begin(), history_.end());
}

void NeuralPredictor::load_state(std::span<const double> in) {
  if (in.empty()) {
    throw std::invalid_argument("NeuralPredictor: bad state size");
  }
  const auto n = static_cast<std::size_t>(in[0]);
  const std::size_t keep =
      model_->config().input_window + model_->config().smoother_window;
  if (n > keep || in.size() != 1 + n) {
    throw std::invalid_argument("NeuralPredictor: bad state size");
  }
  history_.assign(in.begin() + 1, in.end());
}

}  // namespace mmog::predict
