#pragma once

#include <cstddef>
#include <deque>

#include "predict/predictor.hpp"

namespace mmog::predict {

/// Predicts the last observed value (the paper's "Last value"; zero cost,
/// surprisingly competitive on MMOG signals — second best overall in §V-B).
class LastValuePredictor final : public Predictor {
 public:
  std::string_view name() const noexcept override { return "Last value"; }
  void observe(double value) override { last_ = value; }
  double predict() const override { return last_; }
  std::unique_ptr<Predictor> make_fresh() const override {
    return std::make_unique<LastValuePredictor>();
  }
  void save_state(std::vector<double>& out) const override {
    out.push_back(last_);
  }
  void load_state(std::span<const double> in) override {
    if (in.size() != 1) {
      throw std::invalid_argument("LastValuePredictor: bad state size");
    }
    last_ = in[0];
  }

 private:
  double last_ = 0.0;
};

/// Predicts the running mean of all observed values (the paper's "Average";
/// good on stationary Type I signals, poor once the level drifts).
class AveragePredictor final : public Predictor {
 public:
  std::string_view name() const noexcept override { return "Average"; }
  void observe(double value) override {
    sum_ += value;
    ++count_;
  }
  double predict() const override {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  std::unique_ptr<Predictor> make_fresh() const override {
    return std::make_unique<AveragePredictor>();
  }
  void save_state(std::vector<double>& out) const override {
    out.push_back(sum_);
    out.push_back(static_cast<double>(count_));
  }
  void load_state(std::span<const double> in) override {
    if (in.size() != 2) {
      throw std::invalid_argument("AveragePredictor: bad state size");
    }
    sum_ = in[0];
    count_ = static_cast<std::size_t>(in[1]);
  }

 private:
  double sum_ = 0.0;
  std::size_t count_ = 0;
};

/// Predicts the mean of the last `window` observations.
class MovingAveragePredictor final : public Predictor {
 public:
  explicit MovingAveragePredictor(std::size_t window = 5);
  std::string_view name() const noexcept override { return "Moving average"; }
  void observe(double value) override;
  double predict() const override;
  std::unique_ptr<Predictor> make_fresh() const override {
    return std::make_unique<MovingAveragePredictor>(window_);
  }
  /// The running sum is saved verbatim, not recomputed from the window:
  /// it is path-dependent floating-point state and must survive bit-exact.
  void save_state(std::vector<double>& out) const override;
  void load_state(std::span<const double> in) override;

 private:
  std::size_t window_;
  std::deque<double> values_;
  double sum_ = 0.0;
};

/// Predicts the median of the last `window` observations (the paper's
/// "Sliding window median").
class SlidingWindowMedianPredictor final : public Predictor {
 public:
  explicit SlidingWindowMedianPredictor(std::size_t window = 5);
  std::string_view name() const noexcept override {
    return "Sliding window median";
  }
  void observe(double value) override;
  double predict() const override;
  std::unique_ptr<Predictor> make_fresh() const override {
    return std::make_unique<SlidingWindowMedianPredictor>(window_);
  }
  void save_state(std::vector<double>& out) const override;
  void load_state(std::span<const double> in) override;

 private:
  std::size_t window_;
  std::deque<double> values_;
};

/// Exponential smoothing with factor alpha: s <- alpha*x + (1-alpha)*s.
/// The paper evaluates alpha = 0.25, 0.50 and 0.75.
class ExponentialSmoothingPredictor final : public Predictor {
 public:
  explicit ExponentialSmoothingPredictor(double alpha = 0.5);
  std::string_view name() const noexcept override { return name_; }
  void observe(double value) override;
  double predict() const override { return state_; }
  std::unique_ptr<Predictor> make_fresh() const override {
    return std::make_unique<ExponentialSmoothingPredictor>(alpha_);
  }
  double alpha() const noexcept { return alpha_; }
  void save_state(std::vector<double>& out) const override;
  void load_state(std::span<const double> in) override;

 private:
  double alpha_;
  double state_ = 0.0;
  bool primed_ = false;
  std::string name_;
};

}  // namespace mmog::predict
