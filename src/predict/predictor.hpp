#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>

namespace mmog::predict {

/// Interface of an online one-step-ahead load predictor (§IV). The caller
/// feeds each new sample with observe(); predict() returns the estimate for
/// the next sampling step (two minutes ahead in the paper's setup).
///
/// Predictors are cheap, single-zone objects; the provisioner instantiates
/// one per sub-zone (or per server group) via a PredictorFactory.
class Predictor {
 public:
  virtual ~Predictor() = default;

  /// Human-readable algorithm name ("Neural", "Last value", ...).
  virtual std::string_view name() const noexcept = 0;

  /// Records a newly measured sample.
  virtual void observe(double value) = 0;

  /// Predicts the value of the next sample. Implementations must return a
  /// finite value even before any observation (0 by convention).
  virtual double predict() const = 0;

  /// Fresh instance of the same algorithm with empty history. Trained
  /// models (the neural predictor) share their immutable trained state.
  virtual std::unique_ptr<Predictor> make_fresh() const = 0;
};

/// Creates fresh predictor instances; used to spawn one per sub-zone.
using PredictorFactory = std::function<std::unique_ptr<Predictor>()>;

}  // namespace mmog::predict
