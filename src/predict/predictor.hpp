#pragma once

#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mmog::predict {

/// Interface of an online one-step-ahead load predictor (§IV). The caller
/// feeds each new sample with observe(); predict() returns the estimate for
/// the next sampling step (two minutes ahead in the paper's setup).
///
/// Predictors are cheap, single-zone objects; the provisioner instantiates
/// one per sub-zone (or per server group) via a PredictorFactory.
class Predictor {
 public:
  virtual ~Predictor() = default;

  /// Human-readable algorithm name ("Neural", "Last value", ...).
  virtual std::string_view name() const noexcept = 0;

  /// Records a newly measured sample.
  virtual void observe(double value) = 0;

  /// Predicts the value of the next sample. Implementations must return a
  /// finite value even before any observation (0 by convention).
  virtual double predict() const = 0;

  /// Fresh instance of the same algorithm with empty history. Trained
  /// models (the neural predictor) share their immutable trained state.
  virtual std::unique_ptr<Predictor> make_fresh() const = 0;

  /// Appends the predictor's mutable online state to `out` as a flat list
  /// of doubles (checkpointing). The contract is exact round-tripping: on a
  /// fresh instance built with the same configuration and shared model,
  /// load_state() of a saved payload must make every subsequent predict()
  /// and save_state() bit-identical to the original's. Counts are encoded
  /// as doubles (exact below 2^53 — far beyond any run length). Immutable
  /// trained artifacts (AR coefficients, NN weights) are *not* part of this
  /// payload; they are restored by reconstructing the shared model. The
  /// default implementation is for stateless predictors and saves nothing.
  virtual void save_state(std::vector<double>& out) const { (void)out; }

  /// Restores state captured by save_state(). Throws std::invalid_argument
  /// when the payload does not match this predictor's configuration.
  virtual void load_state(std::span<const double> in) {
    if (!in.empty()) {
      throw std::invalid_argument(
          "Predictor::load_state: unexpected state for stateless predictor");
    }
  }
};

/// Creates fresh predictor instances; used to spawn one per sub-zone.
using PredictorFactory = std::function<std::unique_ptr<Predictor>()>;

}  // namespace mmog::predict
