#pragma once

#include <string>
#include <vector>

#include "util/units.hpp"

namespace mmog::dc {

/// A hoster's space-time policy (§II-B): the *resource bulk* — the minimum
/// allocatable quantity of each resource type, as a multiple of the abstract
/// resource unit — and the *time bulk* — the minimum duration of an
/// allocation. A bulk of 0 means that resource is not offered in bulk
/// (Table IV "n/a"): any exact amount may be allocated.
struct HostingPolicy {
  std::string name = "HP";
  util::ResourceVector bulk{};      ///< per-resource minimum quantum (0 = exact)
  double time_bulk_minutes = 360.0; ///< minimum allocation duration
  /// Price of one granted CPU unit per hour, in abstract currency. Finer
  /// grained, shorter-committed offers command a premium in practice; the
  /// Table IV presets encode a mild one. Used by the cost accounting.
  double cpu_unit_price_per_hour = 1.0;

  /// Rounds a demand up to bulk multiples, per resource type. Components
  /// with zero demand stay zero (nothing is requested for them); components
  /// with positive demand and a positive bulk round up to the next multiple.
  util::ResourceVector quantize(const util::ResourceVector& demand) const noexcept;

  /// True when at least one resource type is offered in bulk.
  bool has_bundles() const noexcept;

  /// Bulk-constrained resources are rented as *bundles* in the policy's
  /// fixed ratio (one bundle = one bulk of every constrained resource — the
  /// quantum a hoster actually offers, like a VM size). A policy "not well
  /// fitted to the workload" therefore forces the operator to over-rent the
  /// resources the bundle is rich in (§V-B: ExtNet[in] ~10x over-allocated
  /// under HP-1/HP-2). Returns the bundles needed to cover `need` — the max
  /// over the constrained resources of ceil(need/bulk); 0 when the policy
  /// has no bundles or nothing constrained is needed.
  std::size_t bundles_needed(const util::ResourceVector& need) const noexcept;

  /// Largest bundle count whose resources all fit into `free`.
  std::size_t bundles_fitting(const util::ResourceVector& free) const noexcept;

  /// Resource content of `count` bundles (constrained resources only; the
  /// unconstrained components are 0).
  util::ResourceVector bundle_amount(std::size_t count) const noexcept;

  /// Time bulk expressed in 2-minute simulation steps (rounded up).
  std::size_t time_bulk_steps() const noexcept;

  /// The matching mechanism's "finer grained" criterion (§II-C): policies
  /// with a smaller CPU bulk are finer; ties break on total bulk volume.
  /// Smaller score = finer grain = preferred.
  double granularity_score() const noexcept;

  /// Table IV policy HP-`index` (1-based, 1..11).
  /// Throws std::out_of_range for other indices.
  static HostingPolicy preset(int index);

  /// All eleven Table IV presets, in order HP-1..HP-11.
  static std::vector<HostingPolicy> all_presets();
};

}  // namespace mmog::dc
