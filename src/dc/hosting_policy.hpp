#pragma once

#include <string>
#include <vector>

#include "util/units.hpp"

namespace mmog::dc {

/// The matching mechanism's "finer grained" criterion (§II-C) as a
/// lexicographic key: CPU bulk first (the binding resource), then the time
/// bulk, then the summed non-CPU bulks. Smaller = finer = preferred. The
/// fields are compared one by one — unlike the old scalar score, which
/// folded them into a single double (cpu*1e6 + minutes + other bulks) and
/// could rank a coarser-CPU policy ahead of a finer one whenever the
/// minutes/bulk terms bridged the gap, or collide two distinct policies so
/// ordering silently fell through to distance.
struct GranularityKey {
  double cpu_bulk = 0.0;
  double time_bulk_minutes = 0.0;
  double other_bulk = 0.0;  ///< memory + net_in + net_out bulks

  friend bool operator==(const GranularityKey&,
                         const GranularityKey&) = default;
  friend bool operator<(const GranularityKey& a, const GranularityKey& b) {
    if (a.cpu_bulk != b.cpu_bulk) return a.cpu_bulk < b.cpu_bulk;
    if (a.time_bulk_minutes != b.time_bulk_minutes) {
      return a.time_bulk_minutes < b.time_bulk_minutes;
    }
    return a.other_bulk < b.other_bulk;
  }
};

/// A hoster's space-time policy (§II-B): the *resource bulk* — the minimum
/// allocatable quantity of each resource type, as a multiple of the abstract
/// resource unit — and the *time bulk* — the minimum duration of an
/// allocation. A bulk of 0 means that resource is not offered in bulk
/// (Table IV "n/a"): any exact amount may be allocated.
struct HostingPolicy {
  std::string name = "HP";
  util::ResourceVector bulk{};      ///< per-resource minimum quantum (0 = exact)
  double time_bulk_minutes = 360.0; ///< minimum allocation duration
  /// Price of one granted CPU unit per hour, in abstract currency. Finer
  /// grained, shorter-committed offers command a premium in practice; the
  /// Table IV presets encode a mild one. Used by the cost accounting.
  double cpu_unit_price_per_hour = 1.0;

  /// Rounds a demand up to bulk multiples, per resource type. Components
  /// with zero demand stay zero (nothing is requested for them); components
  /// with positive demand and a positive bulk round up to the next multiple.
  util::ResourceVector quantize(const util::ResourceVector& demand) const noexcept;

  /// True when at least one resource type is offered in bulk.
  bool has_bundles() const noexcept;

  /// Bulk-constrained resources are rented as *bundles* in the policy's
  /// fixed ratio (one bundle = one bulk of every constrained resource — the
  /// quantum a hoster actually offers, like a VM size). A policy "not well
  /// fitted to the workload" therefore forces the operator to over-rent the
  /// resources the bundle is rich in (§V-B: ExtNet[in] ~10x over-allocated
  /// under HP-1/HP-2). Returns the bundles needed to cover `need` — the max
  /// over the constrained resources of ceil(need/bulk); 0 when the policy
  /// has no bundles or nothing constrained is needed.
  std::size_t bundles_needed(const util::ResourceVector& need) const noexcept;

  /// Largest bundle count whose resources all fit into `free`.
  std::size_t bundles_fitting(const util::ResourceVector& free) const noexcept;

  /// Resource content of `count` bundles (constrained resources only; the
  /// unconstrained components are 0).
  util::ResourceVector bundle_amount(std::size_t count) const noexcept;

  /// Time bulk expressed in 2-minute simulation steps (rounded up).
  std::size_t time_bulk_steps() const noexcept;

  /// The policy's grain for the §II-C "finer grained" preference, compared
  /// lexicographically (see GranularityKey).
  GranularityKey granularity_key() const noexcept;

  /// Table IV policy HP-`index` (1-based, 1..11).
  /// Throws std::out_of_range for other indices.
  static HostingPolicy preset(int index);

  /// All eleven Table IV presets, in order HP-1..HP-11.
  static std::vector<HostingPolicy> all_presets();
};

}  // namespace mmog::dc
