#include "dc/ecosystem.hpp"

#include <stdexcept>

namespace mmog::dc {
namespace {

// Representative metro coordinates for the Table III locations.
constexpr GeoPoint kHelsinki{60.17, 24.94};
constexpr GeoPoint kStockholm{59.33, 18.07};
constexpr GeoPoint kLondon{51.51, -0.13};
constexpr GeoPoint kAmsterdam{52.37, 4.90};
constexpr GeoPoint kSanJose{37.34, -121.89};
constexpr GeoPoint kVancouver{49.28, -123.12};
constexpr GeoPoint kDallas{32.78, -96.80};
constexpr GeoPoint kAshburn{39.04, -77.49};
constexpr GeoPoint kToronto{43.65, -79.38};
constexpr GeoPoint kSydney{-33.87, 151.21};
constexpr GeoPoint kNewYork{40.71, -74.01};

DataCenterSpec make_dc(std::string name, std::string country,
                       std::string continent, GeoPoint loc,
                       std::size_t machines, int policy_index) {
  DataCenterSpec d;
  d.name = std::move(name);
  d.country = std::move(country);
  d.continent = std::move(continent);
  d.location = loc;
  d.machines = machines;
  d.policy = HostingPolicy::preset(policy_index);
  return d;
}

}  // namespace

RegionSite region_site(std::string_view region_name) {
  if (region_name == "Europe") return {"Europe", kAmsterdam};
  if (region_name == "US East Coast") return {"US East Coast", kNewYork};
  if (region_name == "US West Coast") return {"US West Coast", kSanJose};
  if (region_name == "US Central") return {"US Central", kDallas};
  if (region_name == "Australia") return {"Australia", kSydney};
  if (region_name == "Canada East") return {"Canada East", kToronto};
  if (region_name == "Canada West") return {"Canada West", kVancouver};
  throw std::out_of_range("region_site: unknown region " +
                          std::string(region_name));
}

std::vector<DataCenterSpec> paper_ecosystem() {
  // Table III; at two-data-center locations the machines split in half and
  // the policies alternate HP-1/HP-2 (§V-B).
  std::vector<DataCenterSpec> dcs;
  dcs.push_back(make_dc("Finland (1)", "Finland", "Europe", kHelsinki, 4, 1));
  dcs.push_back(make_dc("Finland (2)", "Finland", "Europe", kHelsinki, 4, 2));
  dcs.push_back(make_dc("Sweden (1)", "Sweden", "Europe", kStockholm, 4, 1));
  dcs.push_back(make_dc("Sweden (2)", "Sweden", "Europe", kStockholm, 4, 2));
  dcs.push_back(make_dc("U.K. (1)", "U.K.", "Europe", kLondon, 10, 1));
  dcs.push_back(make_dc("U.K. (2)", "U.K.", "Europe", kLondon, 10, 2));
  dcs.push_back(
      make_dc("Netherlands (1)", "Netherlands", "Europe", kAmsterdam, 8, 1));
  dcs.push_back(
      make_dc("Netherlands (2)", "Netherlands", "Europe", kAmsterdam, 7, 2));
  dcs.push_back(make_dc("US West (1)", "U.S. (West)", "North America",
                        kSanJose, 18, 1));
  dcs.push_back(make_dc("US West (2)", "U.S. (West)", "North America",
                        kSanJose, 17, 2));
  dcs.push_back(make_dc("Canada West", "Canada (West)", "North America",
                        kVancouver, 15, 1));
  dcs.push_back(make_dc("US Central", "U.S. (Central)", "North America",
                        kDallas, 15, 2));
  dcs.push_back(make_dc("US East (1)", "U.S. (East)", "North America",
                        kAshburn, 16, 1));
  dcs.push_back(make_dc("US East (2)", "U.S. (East)", "North America",
                        kNewYork, 16, 2));
  dcs.push_back(make_dc("Canada East", "Canada (East)", "North America",
                        kToronto, 10, 1));
  dcs.push_back(
      make_dc("Australia (1)", "Australia", "Australia", kSydney, 4, 1));
  dcs.push_back(
      make_dc("Australia (2)", "Australia", "Australia", kSydney, 4, 2));
  return dcs;
}

std::vector<DataCenterSpec> north_america_ecosystem() {
  // §V-E: East Coast policies are coarse (large bulks), Central finer, West
  // finest. Machine counts follow the North American rows of Table III.
  std::vector<DataCenterSpec> dcs;
  dcs.push_back(make_dc("US West (1)", "U.S. (West)", "North America",
                        kSanJose, 18, 3));  // finest CPU grain
  dcs.push_back(make_dc("US West (2)", "U.S. (West)", "North America",
                        kSanJose, 17, 3));
  dcs.push_back(make_dc("Canada West", "Canada (West)", "North America",
                        kVancouver, 15, 4));
  dcs.push_back(make_dc("US Cent. (1)", "U.S. (Central)", "North America",
                        kDallas, 8, 4));
  dcs.push_back(make_dc("US Cent. (2)", "U.S. (Central)", "North America",
                        kDallas, 7, 5));
  dcs.push_back(make_dc("US East (1)", "U.S. (East)", "North America",
                        kAshburn, 16, 7));  // coarsest CPU grain
  dcs.push_back(make_dc("US East (2)", "U.S. (East)", "North America",
                        kNewYork, 16, 7));
  dcs.push_back(make_dc("Canada East", "Canada (East)", "North America",
                        kToronto, 10, 6));
  return dcs;
}

}  // namespace mmog::dc
