#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "dc/geo.hpp"
#include "dc/hosting_policy.hpp"
#include "util/units.hpp"

namespace mmog::dc {

/// Per-machine capacity of the simulated clusters: each machine can host at
/// least one fully loaded reference game server (1 CPU unit, §V-A). Memory
/// and network capacities are generous relative to one server's needs —
/// especially inbound bandwidth, whose absolute volume (client commands) is
/// tiny, so even the 6-unit inbound bulks of HP-1 fit comfortably.
inline constexpr util::ResourceVector kMachineCapacity =
    util::ResourceVector{{1.0, 8.0, 64.0, 8.0}};

/// A hoster: one data center consisting of a single cluster of `machines`
/// identical machines at a geographic location, renting resources under a
/// space-time hosting policy (§II-B).
struct DataCenterSpec {
  std::string name;
  std::string country;
  std::string continent;
  GeoPoint location{};
  std::size_t machines = 0;
  HostingPolicy policy{};

  util::ResourceVector total_capacity() const noexcept {
    return kMachineCapacity * static_cast<double>(machines);
  }
};

/// One granted resource allocation: quantized amounts, pinned from
/// `start_step` until at least `earliest_release_step` (the time bulk). The
/// system supports no preemption or migration (§II-B), so an allocation is
/// released in full or not at all.
struct Allocation {
  std::size_t id = 0;
  std::size_t dc_index = 0;
  std::size_t game_id = 0;
  std::size_t group_id = 0;   ///< demand origin (server group / zone cluster)
  std::size_t region_id = 0;  ///< geographic origin of the players
  util::ResourceVector amount{};
  std::size_t start_step = 0;
  /// First step at which the rented resources actually serve load (equals
  /// start_step when provisioning is instantaneous, the paper's §V
  /// assumption; later when a setup delay is modelled).
  std::size_t usable_step = 0;
  std::size_t earliest_release_step = 0;

  bool releasable_at(std::size_t step) const noexcept {
    return step >= earliest_release_step;
  }

  bool usable_at(std::size_t step) const noexcept {
    return step >= usable_step;
  }
};

/// Capacity ledger of one data center. Tracks granted allocations and
/// answers feasibility queries for the matcher.
class DataCenterLedger {
 public:
  explicit DataCenterLedger(DataCenterSpec spec);

  const DataCenterSpec& spec() const noexcept { return spec_; }

  /// Resources currently granted.
  const util::ResourceVector& in_use() const noexcept { return in_use_; }

  /// Fraction of the nominal capacity currently usable, in [0, 1]. 1.0 in
  /// healthy operation; lowered by partial-failure injection (a hoster
  /// losing racks keeps serving, with less bulk to offer).
  double capacity_fraction() const noexcept { return capacity_fraction_; }

  /// Sets the usable capacity fraction (clamped to [0, 1]). Already granted
  /// allocations are not touched: when the new effective capacity no longer
  /// covers them, over_capacity() turns true and the caller decides which
  /// allocations to evict.
  void set_capacity_fraction(double fraction) noexcept;

  /// Capacity usable right now: total_capacity() x capacity_fraction().
  util::ResourceVector effective_capacity() const noexcept {
    return spec_.total_capacity() * capacity_fraction_;
  }

  /// True when granted resources exceed the effective capacity (only
  /// possible after a capacity reduction).
  bool over_capacity() const noexcept;

  /// Resources still available.
  util::ResourceVector free() const noexcept {
    return (effective_capacity() - in_use_).clamped_non_negative();
  }

  /// True when an allocation of `amount` fits in the remaining capacity.
  bool fits(const util::ResourceVector& amount) const noexcept;

  /// Grants an allocation of exactly `amount` (already quantized by the
  /// caller). Returns false without side effects when it does not fit.
  bool grant(const util::ResourceVector& amount) noexcept;

  /// Returns previously granted resources to the pool.
  void release(const util::ResourceVector& amount) noexcept;

  /// Fraction of CPU capacity in use, in [0,1].
  double cpu_utilization() const noexcept;

  /// Overwrites the mutable ledger state from a checkpoint. Unlike grant()
  /// this never rejects: a restored ledger may legitimately be over
  /// effective capacity (a capacity cut whose evictions happen next step).
  void restore(const util::ResourceVector& in_use,
               double capacity_fraction) noexcept {
    in_use_ = in_use;
    set_capacity_fraction(capacity_fraction);
  }

 private:
  DataCenterSpec spec_;
  util::ResourceVector in_use_{};
  double capacity_fraction_ = 1.0;
};

}  // namespace mmog::dc
