#include "dc/reservation.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmog::dc {

ReservationCalendar::ReservationCalendar(util::ResourceVector capacity,
                                         std::size_t horizon_steps)
    : capacity_(capacity), usage_(horizon_steps) {
  if (horizon_steps == 0) {
    throw std::invalid_argument("ReservationCalendar: zero horizon");
  }
}

util::ResourceVector ReservationCalendar::available_at(
    std::size_t step) const {
  if (step >= usage_.size()) {
    throw std::out_of_range("ReservationCalendar: step past horizon");
  }
  return (capacity_ - usage_[step]).clamped_non_negative();
}

bool ReservationCalendar::fits(const util::ResourceVector& amount,
                               std::size_t from, std::size_t to) const noexcept {
  if (from >= to) return true;
  if (to > usage_.size()) return false;
  for (std::size_t t = from; t < to; ++t) {
    for (std::size_t r = 0; r < util::kResourceKinds; ++r) {
      if (usage_[t].v[r] + amount.v[r] > capacity_.v[r] + 1e-9) return false;
    }
  }
  return true;
}

std::optional<std::size_t> ReservationCalendar::book(
    const util::ResourceVector& amount, std::size_t from, std::size_t to) {
  if (!fits(amount, from, to)) return std::nullopt;
  for (std::size_t t = from; t < std::min(to, usage_.size()); ++t) {
    usage_[t] += amount;
  }
  bookings_.push_back({amount, from, to, true});
  return bookings_.size() - 1;
}

bool ReservationCalendar::cancel(std::size_t id) {
  if (id >= bookings_.size() || !bookings_[id].active) return false;
  auto& b = bookings_[id];
  for (std::size_t t = b.from; t < std::min(b.to, usage_.size()); ++t) {
    usage_[t] -= b.amount;
    usage_[t] = usage_[t].clamped_non_negative();
  }
  b.active = false;
  return true;
}

std::optional<std::size_t> ReservationCalendar::earliest_fit(
    const util::ResourceVector& amount, std::size_t from,
    std::size_t duration) const {
  // A zero-duration request books nothing, but its start must still be a
  // schedulable step: returning a past-horizon `from` would hand callers a
  // start that available_at() throws on.
  if (duration == 0) {
    if (from >= usage_.size()) return std::nullopt;
    return from;
  }
  if (from + duration > usage_.size()) return std::nullopt;
  for (std::size_t start = from; start + duration <= usage_.size(); ++start) {
    if (fits(amount, start, start + duration)) return start;
  }
  return std::nullopt;
}

std::size_t ReservationCalendar::active_bookings() const noexcept {
  std::size_t n = 0;
  for (const auto& b : bookings_) {
    if (b.active) ++n;
  }
  return n;
}

std::vector<ReservationCalendar::BookingView> ReservationCalendar::bookings()
    const {
  std::vector<BookingView> out;
  out.reserve(bookings_.size());
  for (const auto& b : bookings_) {
    out.push_back({b.amount, b.from, b.to, b.active});
  }
  return out;
}

ReservationCalendar ReservationCalendar::restore(
    util::ResourceVector capacity, std::size_t horizon_steps,
    std::vector<BookingView> bookings) {
  ReservationCalendar cal(capacity, horizon_steps);
  for (const auto& b : bookings) {
    if (b.to > horizon_steps || b.from > b.to) {
      throw std::invalid_argument(
          "ReservationCalendar::restore: booking outside horizon");
    }
    cal.bookings_.push_back(Booking{b.amount, b.from, b.to, b.active});
    if (b.active) {
      for (std::size_t s = b.from; s < b.to; ++s) {
        cal.usage_[s] += b.amount;
      }
    }
  }
  return cal;
}

}  // namespace mmog::dc
