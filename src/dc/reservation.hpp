#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "util/units.hpp"

namespace mmog::dc {

/// Advance-reservation calendar of one data center (§II-B: under the
/// reservation service model, requests are immediately fitted in the
/// schedule rather than queued). Capacity is tracked per 2-minute step over
/// a fixed horizon; bookings are all-or-nothing over their interval and can
/// be cancelled before they are consumed.
class ReservationCalendar {
 public:
  /// A calendar over [0, horizon_steps) with per-step `capacity`.
  /// Throws std::invalid_argument on a zero horizon.
  ReservationCalendar(util::ResourceVector capacity,
                      std::size_t horizon_steps);

  std::size_t horizon() const noexcept { return usage_.size(); }
  const util::ResourceVector& capacity() const noexcept { return capacity_; }

  /// Free capacity at one step. Throws std::out_of_range past the horizon.
  util::ResourceVector available_at(std::size_t step) const;

  /// True when `amount` fits at every step of [from, to). Empty intervals
  /// fit trivially; intervals past the horizon do not fit.
  bool fits(const util::ResourceVector& amount, std::size_t from,
            std::size_t to) const noexcept;

  /// Books `amount` over [from, to); returns the reservation id, or
  /// std::nullopt (without side effects) when it does not fit.
  std::optional<std::size_t> book(const util::ResourceVector& amount,
                                  std::size_t from, std::size_t to);

  /// Cancels a booking; false when the id is unknown or already cancelled.
  bool cancel(std::size_t id);

  /// Earliest start >= `from` such that [start, start+duration) fits;
  /// std::nullopt when the schedule has no such window. Every returned
  /// start is inside the horizon (valid for available_at()), including for
  /// duration == 0.
  std::optional<std::size_t> earliest_fit(const util::ResourceVector& amount,
                                          std::size_t from,
                                          std::size_t duration) const;

  std::size_t active_bookings() const noexcept;

  /// One booking record, exposed for checkpointing. The index in the
  /// bookings() vector is the reservation id (cancelled bookings stay in
  /// place so ids remain stable).
  struct BookingView {
    util::ResourceVector amount{};
    std::size_t from = 0;
    std::size_t to = 0;
    bool active = false;
  };

  /// Every booking ever made, in id order (including cancelled ones).
  std::vector<BookingView> bookings() const;

  /// Rebuilds a calendar from checkpointed bookings; per-step usage is
  /// recomputed from the active ones. Throws std::invalid_argument when a
  /// booking lies outside the horizon.
  static ReservationCalendar restore(util::ResourceVector capacity,
                                     std::size_t horizon_steps,
                                     std::vector<BookingView> bookings);

 private:
  struct Booking {
    util::ResourceVector amount{};
    std::size_t from = 0;
    std::size_t to = 0;
    bool active = false;
  };

  util::ResourceVector capacity_{};
  std::vector<util::ResourceVector> usage_;  ///< booked per step
  std::vector<Booking> bookings_;
};

}  // namespace mmog::dc
