#include "dc/geo.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace mmog::dc {
namespace {
constexpr double kEarthRadiusKm = 6371.0;
constexpr double kCoLocationRadiusKm = 100.0;

double deg2rad(double d) noexcept { return d * std::numbers::pi / 180.0; }
}  // namespace

double haversine_km(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double dlat = deg2rad(b.lat - a.lat);
  const double dlon = deg2rad(b.lon - a.lon);
  const double h =
      std::sin(dlat / 2) * std::sin(dlat / 2) +
      std::cos(deg2rad(a.lat)) * std::cos(deg2rad(b.lat)) *
          std::sin(dlon / 2) * std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double max_distance_km(DistanceClass c) noexcept {
  switch (c) {
    case DistanceClass::kSameLocation: return kCoLocationRadiusKm;
    case DistanceClass::kVeryClose: return 1000.0;
    case DistanceClass::kClose: return 2000.0;
    case DistanceClass::kFar: return 4000.0;
    case DistanceClass::kVeryFar: return 1e9;
  }
  return 0.0;
}

DistanceClass classify_distance(double km) noexcept {
  if (km <= kCoLocationRadiusKm) return DistanceClass::kSameLocation;
  if (km < 1000.0) return DistanceClass::kVeryClose;
  if (km < 2000.0) return DistanceClass::kClose;
  if (km < 4000.0) return DistanceClass::kFar;
  return DistanceClass::kVeryFar;
}

std::string_view distance_class_name(DistanceClass c) noexcept {
  switch (c) {
    case DistanceClass::kSameLocation: return "Same location";
    case DistanceClass::kVeryClose: return "Very close (d<1000km)";
    case DistanceClass::kClose: return "Close (d<2000km)";
    case DistanceClass::kFar: return "Far (d<4000km)";
    case DistanceClass::kVeryFar: return "Very far (d>4000km)";
  }
  return "?";
}

bool within_tolerance(double km, DistanceClass tolerance) noexcept {
  return km <= max_distance_km(tolerance);
}

double estimate_rtt_ms(double distance_km) noexcept {
  constexpr double kAccessOverheadMs = 20.0;
  constexpr double kKmPerRttMs = 50.0;  // fiber + routing inflation
  return kAccessOverheadMs + std::max(0.0, distance_km) / kKmPerRttMs;
}

double latency_tolerance_ms(GameGenre genre) noexcept {
  switch (genre) {
    case GameGenre::kRacing: return 50.0;
    case GameGenre::kFirstPersonShooter: return 100.0;
    case GameGenre::kRolePlaying: return 500.0;
    case GameGenre::kRealTimeStrategy: return 1000.0;
  }
  return 100.0;
}

std::string_view genre_name(GameGenre genre) noexcept {
  switch (genre) {
    case GameGenre::kRacing: return "Racing";
    case GameGenre::kFirstPersonShooter: return "FPS";
    case GameGenre::kRolePlaying: return "RPG";
    case GameGenre::kRealTimeStrategy: return "RTS";
  }
  return "?";
}

DistanceClass tolerance_class_for_genre(GameGenre genre) noexcept {
  const double budget = latency_tolerance_ms(genre);
  DistanceClass best = DistanceClass::kSameLocation;
  for (auto c : {DistanceClass::kVeryClose, DistanceClass::kClose,
                 DistanceClass::kFar, DistanceClass::kVeryFar}) {
    // kVeryFar has no bound; require a generous but finite planet-scale
    // distance to qualify.
    const double worst =
        c == DistanceClass::kVeryFar ? 20000.0 : max_distance_km(c);
    if (estimate_rtt_ms(worst) <= budget) best = c;
  }
  return best;
}

}  // namespace mmog::dc
