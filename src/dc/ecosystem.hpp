#pragma once

#include <string_view>
#include <vector>

#include "dc/datacenter.hpp"

namespace mmog::dc {

/// A player-population site: where a region's demand originates. Latency
/// tolerance is evaluated between these sites and the data centers.
struct RegionSite {
  std::string name;
  GeoPoint location{};
};

/// Geographic site of a workload region by name ("Europe", "US East Coast",
/// "US West Coast", "US Central", "Australia", and the North American
/// sub-region names). Throws std::out_of_range for unknown names.
RegionSite region_site(std::string_view region_name);

/// The Table III experimental environment: 15 data centers in 7 countries
/// on 4 continents, 166 machines total. Hosting policies are assigned
/// HP-1/HP-2 round-robin; where a location hosts two data centers, one gets
/// HP-1 and the other HP-2 with half the machines each (§V-B).
std::vector<DataCenterSpec> paper_ecosystem();

/// The §V-E North American sub-world used for the latency-tolerance
/// experiments (Figs 13-14): eight data centers whose hosting policies are
/// coarse-grained on the East Coast and become gradually finer towards the
/// Central and West Coast locations.
std::vector<DataCenterSpec> north_america_ecosystem();

}  // namespace mmog::dc
