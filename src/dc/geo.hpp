#pragma once

#include <cstddef>
#include <string_view>

namespace mmog::dc {

/// A point on the globe (degrees).
struct GeoPoint {
  double lat = 0.0;
  double lon = 0.0;
};

/// Great-circle distance in kilometres (haversine).
double haversine_km(const GeoPoint& a, const GeoPoint& b) noexcept;

/// The paper's five maximal player-server distance classes (§V-E). They
/// encode a game's latency tolerance: an ideal network is assumed, so
/// latency is determined exclusively by physical distance.
enum class DistanceClass {
  kSameLocation = 0,  ///< d ~ 0 km (servers co-located with the users)
  kVeryClose = 1,     ///< d < 1000 km
  kClose = 2,         ///< d < 2000 km
  kFar = 3,           ///< d < 4000 km
  kVeryFar = 4,       ///< any server can serve any user
};

inline constexpr std::size_t kDistanceClassCount = 5;

/// Upper bound of a class in km (kSameLocation uses a 100 km co-location
/// radius; kVeryFar is unbounded).
double max_distance_km(DistanceClass c) noexcept;

/// Class containing the given distance.
DistanceClass classify_distance(double km) noexcept;

std::string_view distance_class_name(DistanceClass c) noexcept;

/// True when a data center at distance `km` may serve a game whose latency
/// tolerance is `tolerance`.
bool within_tolerance(double km, DistanceClass tolerance) noexcept;

/// Round-trip network latency estimate for a great-circle distance:
/// ~20 ms of fixed access/processing overhead plus propagation through
/// fiber with typical routing inflation (about 1 ms of RTT per 50 km).
double estimate_rtt_ms(double distance_km) noexcept;

/// Game genres with the latency tolerances reported by the studies the
/// paper cites (Claypool et al. [17], [18]): the playability threshold
/// depends on the dominant in-game action.
enum class GameGenre {
  kRacing,             ///< twitch steering: ~50 ms RTT
  kFirstPersonShooter, ///< aiming/dodging: ~100 ms RTT
  kRolePlaying,        ///< point-and-click combat: ~500 ms RTT
  kRealTimeStrategy,   ///< command latency hidden by animation: ~1000 ms
};

/// Playability RTT threshold of a genre, in milliseconds.
double latency_tolerance_ms(GameGenre genre) noexcept;

std::string_view genre_name(GameGenre genre) noexcept;

/// The widest §V-E distance class whose worst-case distance still meets the
/// genre's RTT threshold under estimate_rtt_ms — how an operator would pick
/// the matcher's tolerance from the game design.
DistanceClass tolerance_class_for_genre(GameGenre genre) noexcept;

}  // namespace mmog::dc
