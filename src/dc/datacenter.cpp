#include "dc/datacenter.hpp"

#include <algorithm>

namespace mmog::dc {

DataCenterLedger::DataCenterLedger(DataCenterSpec spec)
    : spec_(std::move(spec)) {}

// The ledger operations below run inside the allocate/release walks of
// every simulation step; the lint region proves they stay allocation-free.
// mmog-lint: hot-begin(ledger)
bool DataCenterLedger::fits(const util::ResourceVector& amount) const noexcept {
  const auto cap = effective_capacity();
  for (std::size_t i = 0; i < util::kResourceKinds; ++i) {
    if (in_use_.v[i] + amount.v[i] > cap.v[i] + 1e-9) return false;
  }
  return true;
}

void DataCenterLedger::set_capacity_fraction(double fraction) noexcept {
  capacity_fraction_ = std::clamp(fraction, 0.0, 1.0);
}

bool DataCenterLedger::over_capacity() const noexcept {
  const auto cap = effective_capacity();
  for (std::size_t i = 0; i < util::kResourceKinds; ++i) {
    if (in_use_.v[i] > cap.v[i] + 1e-9) return true;
  }
  return false;
}

bool DataCenterLedger::grant(const util::ResourceVector& amount) noexcept {
  if (!fits(amount)) return false;
  in_use_ += amount;
  return true;
}

void DataCenterLedger::release(const util::ResourceVector& amount) noexcept {
  in_use_ -= amount;
  in_use_ = in_use_.clamped_non_negative();
}

double DataCenterLedger::cpu_utilization() const noexcept {
  const double cap = spec_.total_capacity().cpu();
  if (cap <= 0.0) return 0.0;
  return std::clamp(in_use_.cpu() / cap, 0.0, 1.0);
}
// mmog-lint: hot-end

}  // namespace mmog::dc
