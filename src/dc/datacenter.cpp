#include "dc/datacenter.hpp"

#include <algorithm>

namespace mmog::dc {

DataCenterLedger::DataCenterLedger(DataCenterSpec spec)
    : spec_(std::move(spec)) {}

bool DataCenterLedger::fits(const util::ResourceVector& amount) const noexcept {
  const auto cap = spec_.total_capacity();
  for (std::size_t i = 0; i < util::kResourceKinds; ++i) {
    if (in_use_.v[i] + amount.v[i] > cap.v[i] + 1e-9) return false;
  }
  return true;
}

bool DataCenterLedger::grant(const util::ResourceVector& amount) noexcept {
  if (!fits(amount)) return false;
  in_use_ += amount;
  return true;
}

void DataCenterLedger::release(const util::ResourceVector& amount) noexcept {
  in_use_ -= amount;
  in_use_ = in_use_.clamped_non_negative();
}

double DataCenterLedger::cpu_utilization() const noexcept {
  const double cap = spec_.total_capacity().cpu();
  if (cap <= 0.0) return 0.0;
  return std::clamp(in_use_.cpu() / cap, 0.0, 1.0);
}

}  // namespace mmog::dc
