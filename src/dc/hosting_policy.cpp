#include "dc/hosting_policy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/timeseries.hpp"

namespace mmog::dc {

util::ResourceVector HostingPolicy::quantize(
    const util::ResourceVector& demand) const noexcept {
  util::ResourceVector out;
  for (std::size_t i = 0; i < util::kResourceKinds; ++i) {
    const double d = demand.v[i];
    const double b = bulk.v[i];
    if (d <= 0.0) {
      out.v[i] = 0.0;
    } else if (b <= 0.0) {
      out.v[i] = d;  // no bulk constraint: exact allocation
    } else {
      out.v[i] = std::ceil(d / b - 1e-9) * b;
    }
  }
  return out;
}

bool HostingPolicy::has_bundles() const noexcept {
  for (double b : bulk.v) {
    if (b > 0.0) return true;
  }
  return false;
}

std::size_t HostingPolicy::bundles_needed(
    const util::ResourceVector& need) const noexcept {
  std::size_t k = 0;
  for (std::size_t i = 0; i < util::kResourceKinds; ++i) {
    if (bulk.v[i] <= 0.0 || need.v[i] <= 0.0) continue;
    const auto r = static_cast<std::size_t>(
        std::ceil(need.v[i] / bulk.v[i] - 1e-9));
    k = std::max(k, r);
  }
  return k;
}

std::size_t HostingPolicy::bundles_fitting(
    const util::ResourceVector& free) const noexcept {
  std::size_t k = std::numeric_limits<std::size_t>::max();
  bool constrained = false;
  for (std::size_t i = 0; i < util::kResourceKinds; ++i) {
    if (bulk.v[i] <= 0.0) continue;
    constrained = true;
    const double fit = std::floor((free.v[i] + 1e-9) / bulk.v[i]);
    k = std::min(k, fit <= 0.0 ? 0 : static_cast<std::size_t>(fit));
  }
  return constrained ? k : 0;
}

util::ResourceVector HostingPolicy::bundle_amount(
    std::size_t count) const noexcept {
  util::ResourceVector out{};
  for (std::size_t i = 0; i < util::kResourceKinds; ++i) {
    if (bulk.v[i] > 0.0) out.v[i] = bulk.v[i] * static_cast<double>(count);
  }
  return out;
}

std::size_t HostingPolicy::time_bulk_steps() const noexcept {
  const double steps = time_bulk_minutes * 60.0 / util::kSampleStepSeconds;
  return static_cast<std::size_t>(std::ceil(steps - 1e-9));
}

GranularityKey HostingPolicy::granularity_key() const noexcept {
  // CPU grain dominates (it is the binding resource); the time bulk and
  // then the other bulks break ties, each compared in its own field so no
  // amount of minutes or bandwidth bulk can outweigh a finer CPU grain.
  return {bulk.cpu(), time_bulk_minutes,
          bulk.memory() + bulk.net_in() + bulk.net_out()};
}

HostingPolicy HostingPolicy::preset(int index) {
  // Table IV. Columns: CPU, Memory, ExtNet[in], ExtNet[out], Time[min];
  // 0 encodes the table's "n/a".
  struct Row {
    double cpu, mem, net_in, net_out, minutes;
  };
  static constexpr Row kRows[] = {
      {0.25, 0.0, 6.0, 0.33, 360.0},   // HP-1
      {0.25, 0.0, 4.0, 0.50, 360.0},   // HP-2
      {0.22, 2.0, 0.0, 0.0, 180.0},    // HP-3
      {0.28, 2.0, 0.0, 0.0, 180.0},    // HP-4
      {0.37, 2.0, 0.0, 0.0, 180.0},    // HP-5
      {0.56, 2.0, 0.0, 0.0, 180.0},    // HP-6
      {1.11, 2.0, 0.0, 0.0, 180.0},    // HP-7
      {0.37, 2.0, 0.0, 0.0, 360.0},    // HP-8
      {0.37, 2.0, 0.0, 0.0, 720.0},    // HP-9
      {0.37, 2.0, 0.0, 0.0, 1440.0},   // HP-10
      {0.37, 2.0, 0.0, 0.0, 2880.0},   // HP-11
  };
  if (index < 1 || index > 11) {
    throw std::out_of_range("HostingPolicy::preset: index must be 1..11");
  }
  const Row& r = kRows[index - 1];
  HostingPolicy p;
  p.name = "HP-" + std::to_string(index);
  p.bulk = util::ResourceVector::of(r.cpu, r.mem, r.net_in, r.net_out);
  p.time_bulk_minutes = r.minutes;
  // Mild premium for flexibility: finer CPU grain and shorter commitments
  // cost more per unit-hour (anchored so HP-5 at 3 h = 1.0).
  p.cpu_unit_price_per_hour =
      1.0 + 0.25 * (0.37 - r.cpu) / 0.37 + 0.05 * (180.0 / r.minutes - 1.0);
  return p;
}

std::vector<HostingPolicy> HostingPolicy::all_presets() {
  std::vector<HostingPolicy> all;
  all.reserve(11);
  for (int i = 1; i <= 11; ++i) all.push_back(preset(i));
  return all;
}

}  // namespace mmog::dc
