#include "util/args.hpp"

#include <stdexcept>

namespace mmog::util {

Args::Args(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0 && token.size() > 2) {
      const std::string name = token.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        options_[name] = argv[++i];
      } else {
        options_[name] = "";  // boolean flag
      }
    } else {
      positional_.push_back(token);
    }
  }
}

bool Args::has(const std::string& name) const {
  return options_.find(name) != options_.end();
}

std::string Args::get(const std::string& name,
                      const std::string& fallback) const {
  const auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

double Args::get_double(const std::string& name, double fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument(it->second);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("Args: --" + name +
                                " expects a number, got '" + it->second +
                                "'");
  }
}

long Args::get_long(const std::string& name, long fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const long v = std::stol(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument(it->second);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("Args: --" + name +
                                " expects an integer, got '" + it->second +
                                "'");
  }
}

}  // namespace mmog::util
