#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace mmog::util {

/// A fixed-size thread pool. Workers pull tasks from a shared queue; the
/// pool joins all workers on destruction after draining outstanding work.
///
/// Thread-safety: submit() may be called concurrently from any thread.
class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Blocks until all queued tasks finish, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto fut = task->get_future();
    {
      MutexLock lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  std::size_t thread_count() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::queue<std::function<void()>> queue_ GUARDED_BY(mutex_);
  bool stopping_ GUARDED_BY(mutex_) = false;
  CondVar cv_;
};

/// Runs fn(i) for i in [0, n) across the pool and blocks until all complete.
/// Work is split into contiguous chunks, one per worker. Exceptions from any
/// chunk are rethrown (the first one encountered).
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

/// Convenience overload using a process-wide shared pool.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

/// The process-wide shared pool (lazily constructed).
ThreadPool& shared_pool();

}  // namespace mmog::util
