#include "util/duration.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "util/timeseries.hpp"

namespace mmog::util {

double parse_duration_steps(std::string_view text, bool allow_zero,
                            std::string_view what) {
  if (text.empty()) {
    throw std::invalid_argument(std::string(what) + ": empty duration");
  }
  double per_step_seconds = 0.0;  // 0 = already in steps
  switch (text.back()) {
    case 's': per_step_seconds = 1.0; break;
    case 'm': per_step_seconds = 60.0; break;
    case 'h': per_step_seconds = 3600.0; break;
    case 'd': per_step_seconds = 86400.0; break;
    case 'w': per_step_seconds = 7.0 * 86400.0; break;
    default: break;
  }
  auto digits = text;
  if (per_step_seconds > 0.0) digits.remove_suffix(1);
  const std::string s(digits);
  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  if (s.empty() || end != s.c_str() + s.size()) {
    throw std::invalid_argument(std::string(what) + ": malformed duration '" +
                                std::string(text) + "'");
  }
  const double steps =
      per_step_seconds > 0.0 ? value * per_step_seconds / kSampleStepSeconds
                             : value;
  if (!(steps > 0.0) && !(allow_zero && steps == 0.0)) {
    throw std::invalid_argument(std::string(what) + ": duration '" +
                                std::string(text) + "' must be positive");
  }
  return steps;
}

}  // namespace mmog::util
