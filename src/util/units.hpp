#pragma once

#include <array>
#include <cstddef>
#include <string_view>

namespace mmog::util {

/// The four resource types of the paper's data-center model (§II-B):
/// CPU time, memory, inbound external network, outbound external network.
enum class ResourceKind : std::size_t {
  kCpu = 0,
  kMemory = 1,
  kNetIn = 2,
  kNetOut = 3,
};

inline constexpr std::size_t kResourceKinds = 4;

/// Short printable name of a resource kind.
constexpr std::string_view resource_name(ResourceKind k) noexcept {
  switch (k) {
    case ResourceKind::kCpu: return "CPU";
    case ResourceKind::kMemory: return "Memory";
    case ResourceKind::kNetIn: return "ExtNet[in]";
    case ResourceKind::kNetOut: return "ExtNet[out]";
  }
  return "?";
}

/// A quantity of each resource type, in abstract "units" (one unit = the
/// requirement of one fully loaded reference game server, per §V-A).
/// Supports element-wise arithmetic; used for demand, offers and ledgers.
struct ResourceVector {
  std::array<double, kResourceKinds> v{};

  constexpr double& operator[](ResourceKind k) noexcept {
    return v[static_cast<std::size_t>(k)];
  }
  constexpr double operator[](ResourceKind k) const noexcept {
    return v[static_cast<std::size_t>(k)];
  }

  constexpr double cpu() const noexcept { return (*this)[ResourceKind::kCpu]; }
  constexpr double memory() const noexcept {
    return (*this)[ResourceKind::kMemory];
  }
  constexpr double net_in() const noexcept {
    return (*this)[ResourceKind::kNetIn];
  }
  constexpr double net_out() const noexcept {
    return (*this)[ResourceKind::kNetOut];
  }

  constexpr ResourceVector& operator+=(const ResourceVector& o) noexcept {
    for (std::size_t i = 0; i < kResourceKinds; ++i) v[i] += o.v[i];
    return *this;
  }
  constexpr ResourceVector& operator-=(const ResourceVector& o) noexcept {
    for (std::size_t i = 0; i < kResourceKinds; ++i) v[i] -= o.v[i];
    return *this;
  }
  constexpr ResourceVector& operator*=(double s) noexcept {
    for (auto& x : v) x *= s;
    return *this;
  }

  friend constexpr ResourceVector operator+(ResourceVector a,
                                            const ResourceVector& b) noexcept {
    return a += b;
  }
  friend constexpr ResourceVector operator-(ResourceVector a,
                                            const ResourceVector& b) noexcept {
    return a -= b;
  }
  friend constexpr ResourceVector operator*(ResourceVector a,
                                            double s) noexcept {
    return a *= s;
  }
  friend constexpr ResourceVector operator*(double s,
                                            ResourceVector a) noexcept {
    return a *= s;
  }
  friend constexpr bool operator==(const ResourceVector&,
                                   const ResourceVector&) noexcept = default;

  /// True when every component of this vector is >= the other's.
  constexpr bool covers(const ResourceVector& need) const noexcept {
    for (std::size_t i = 0; i < kResourceKinds; ++i) {
      if (v[i] < need.v[i]) return false;
    }
    return true;
  }

  /// True when every component is (numerically) non-negative.
  constexpr bool non_negative() const noexcept {
    for (double x : v) {
      if (x < 0.0) return false;
    }
    return true;
  }

  /// Element-wise max with zero (clips negatives).
  constexpr ResourceVector clamped_non_negative() const noexcept {
    ResourceVector r = *this;
    for (auto& x : r.v) {
      if (x < 0.0) x = 0.0;
    }
    return r;
  }

  /// Builds a vector from the four components in enum order.
  static constexpr ResourceVector of(double cpu, double memory, double net_in,
                                     double net_out) noexcept {
    ResourceVector r;
    r.v = {cpu, memory, net_in, net_out};
    return r;
  }
};

}  // namespace mmog::util
