#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace mmog::util {

/// A fixed-step time series: samples taken every `step_seconds` starting at
/// t = 0. This is the common currency between the trace generators, the
/// predictors and the provisioning simulator (the paper samples every
/// 2 minutes, i.e. step_seconds = 120).
class TimeSeries {
 public:
  TimeSeries() = default;

  /// Creates a series with the given sampling step (> 0) and optional
  /// initial values. Throws std::invalid_argument on a non-positive step.
  explicit TimeSeries(double step_seconds, std::vector<double> values = {});

  double step_seconds() const noexcept { return step_seconds_; }
  std::size_t size() const noexcept { return values_.size(); }
  bool empty() const noexcept { return values_.empty(); }

  /// Wall-clock time of sample i.
  double time_at(std::size_t i) const noexcept {
    return static_cast<double>(i) * step_seconds_;
  }

  double operator[](std::size_t i) const noexcept { return values_[i]; }
  double& operator[](std::size_t i) noexcept { return values_[i]; }

  /// Bounds-checked access; throws std::out_of_range.
  double at(std::size_t i) const { return values_.at(i); }

  void push_back(double v) { values_.push_back(v); }
  void reserve(std::size_t n) { values_.reserve(n); }

  std::span<const double> values() const noexcept { return values_; }
  std::vector<double>& mutable_values() noexcept { return values_; }

  /// Sub-series [first, first+count); clamps to the available range.
  TimeSeries slice(std::size_t first, std::size_t count) const;

  /// Downsamples by averaging `factor` consecutive samples (factor >= 1).
  /// The resulting step is factor * step_seconds. A trailing partial window
  /// is averaged over however many samples it holds.
  TimeSeries downsample_mean(std::size_t factor) const;

  /// Element-wise sum of series with identical step and length.
  /// Throws std::invalid_argument on mismatch.
  static TimeSeries sum(std::span<const TimeSeries> series);

  /// Largest value (0 for an empty series).
  double max() const noexcept;

  /// Smallest value (0 for an empty series).
  double min() const noexcept;

  /// Arithmetic mean (0 for an empty series).
  double mean() const noexcept;

 private:
  double step_seconds_ = 1.0;
  std::vector<double> values_;
};

/// Number of 2-minute samples in `days` simulated days.
constexpr std::size_t samples_per_days(double days) noexcept {
  return static_cast<std::size_t>(days * 24.0 * 30.0);  // 30 samples/hour
}

/// The paper's sampling interval: two minutes.
inline constexpr double kSampleStepSeconds = 120.0;

/// Samples per simulated day at the 2-minute interval.
inline constexpr std::size_t kSamplesPerDay = 720;

}  // namespace mmog::util
