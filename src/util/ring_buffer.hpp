#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace mmog::util {

/// Fixed-capacity ring buffer: push() overwrites the oldest element once
/// full, and the stored window is readable as at most two contiguous spans
/// (oldest-first), so hot-path consumers can walk the history without
/// copying it out — the allocation happens once, at construction.
///
/// Built for the online predictors' recent-sample windows: the provisioning
/// loop calls predict() once per server group per step, and a deque (or a
/// per-call std::vector copy) puts an allocation on that path.
template <typename T>
class RingBuffer {
 public:
  /// Throws std::invalid_argument on a zero capacity.
  explicit RingBuffer(std::size_t capacity) : buf_(capacity) {
    if (capacity == 0) {
      throw std::invalid_argument("RingBuffer: zero capacity");
    }
  }

  std::size_t capacity() const noexcept { return buf_.size(); }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  bool full() const noexcept { return size_ == buf_.size(); }

  /// Appends `value`, evicting the oldest element when full.
  void push(const T& value) {
    buf_[(head_ + size_) % buf_.size()] = value;
    if (size_ == buf_.size()) {
      head_ = (head_ + 1) % buf_.size();
    } else {
      ++size_;
    }
  }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

  /// Element at logical index `i` (0 = oldest). No bounds check.
  const T& operator[](std::size_t i) const noexcept {
    return buf_[(head_ + i) % buf_.size()];
  }

  /// Oldest element. Undefined when empty.
  const T& front() const noexcept { return buf_[head_]; }
  /// Newest element. Undefined when empty.
  const T& back() const noexcept {
    return buf_[(head_ + size_ - 1) % buf_.size()];
  }

  /// The stored window as two contiguous oldest-first pieces: the logical
  /// content is first() followed by second() (second() is empty while the
  /// buffer has not wrapped).
  std::span<const T> first() const noexcept {
    return {buf_.data() + head_, std::min(size_, buf_.size() - head_)};
  }
  std::span<const T> second() const noexcept {
    const std::size_t head_run = std::min(size_, buf_.size() - head_);
    return {buf_.data(), size_ - head_run};
  }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;  ///< index of the oldest element
  std::size_t size_ = 0;
};

}  // namespace mmog::util
