// Global operator new/delete replacements that count allocations when armed.
//
// Design constraints, in order:
//   * Zero overhead when disarmed: one relaxed atomic load on the hot path,
//     no thread-local access, no extra memory traffic. Disarmed binaries
//     must behave exactly like a build without this file.
//   * No recursion: the counting path may not allocate. Per-thread counter
//     blocks therefore come from a fixed static array (never from the
//     heap), claimed once per thread with an atomic index. If more threads
//     allocate than there are slots, the extras share one overflow block —
//     counts stay correct, they just contend a little.
//   * Sanitizer-friendly: the replacements forward to malloc/free, which
//     ASan/TSan intercept, so leak checking and poisoning keep working.
//
// Blocks are never returned: a thread keeps its slot for the process
// lifetime (threads in pools outlive many profiling scopes). totals() sums
// every claimed block plus the overflow block, so allocations made by
// worker threads inside a profiled phase are attributed to that phase.

#include "util/alloccount.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace mmog::util::alloccount {
namespace {

struct alignas(64) Block {
  std::atomic<std::uint64_t> allocs{0};
  std::atomic<std::uint64_t> frees{0};
  std::atomic<std::uint64_t> bytes{0};
};

constexpr std::size_t kMaxBlocks = 256;

// All constant-initialized: no dynamic initializers, so the hooks are safe
// from the very first allocation of the process.
std::atomic<int> g_armed{0};
Block g_blocks[kMaxBlocks];
Block g_overflow;
std::atomic<std::size_t> g_next_block{0};
thread_local Block* tl_block = nullptr;

Block& local_block() noexcept {
  if (tl_block == nullptr) {
    const std::size_t idx =
        g_next_block.fetch_add(1, std::memory_order_relaxed);
    tl_block = idx < kMaxBlocks ? &g_blocks[idx] : &g_overflow;
  }
  return *tl_block;
}

inline void record_alloc(std::size_t size) noexcept {
  Block& b = local_block();
  b.allocs.fetch_add(1, std::memory_order_relaxed);
  b.bytes.fetch_add(size, std::memory_order_relaxed);
}

inline void record_free() noexcept {
  local_block().frees.fetch_add(1, std::memory_order_relaxed);
}

void* allocate(std::size_t size) {
  for (;;) {
    if (void* p = std::malloc(size ? size : 1)) {
      if (g_armed.load(std::memory_order_relaxed) != 0) record_alloc(size);
      return p;
    }
    const std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void* allocate_aligned(std::size_t size, std::size_t alignment) {
  for (;;) {
    void* p = nullptr;
    if (posix_memalign(&p, alignment < sizeof(void*) ? sizeof(void*)
                                                     : alignment,
                       size ? size : 1) == 0) {
      if (g_armed.load(std::memory_order_relaxed) != 0) record_alloc(size);
      return p;
    }
    const std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

inline void deallocate(void* p) noexcept {
  if (p == nullptr) return;
  if (g_armed.load(std::memory_order_relaxed) != 0) record_free();
  std::free(p);
}

}  // namespace

bool enabled() noexcept {
  return g_armed.load(std::memory_order_relaxed) != 0;
}

void arm() noexcept { g_armed.fetch_add(1, std::memory_order_relaxed); }

void disarm() noexcept { g_armed.fetch_sub(1, std::memory_order_relaxed); }

Totals totals() noexcept {
  Totals out;
  const std::size_t claimed = g_next_block.load(std::memory_order_relaxed);
  const std::size_t n = claimed < kMaxBlocks ? claimed : kMaxBlocks;
  for (std::size_t i = 0; i < n; ++i) {
    out.allocs += g_blocks[i].allocs.load(std::memory_order_relaxed);
    out.frees += g_blocks[i].frees.load(std::memory_order_relaxed);
    out.bytes += g_blocks[i].bytes.load(std::memory_order_relaxed);
  }
  out.allocs += g_overflow.allocs.load(std::memory_order_relaxed);
  out.frees += g_overflow.frees.load(std::memory_order_relaxed);
  out.bytes += g_overflow.bytes.load(std::memory_order_relaxed);
  return out;
}

}  // namespace mmog::util::alloccount

// ---------------------------------------------------------------------------
// Global replacements. Every form forwards to the two helpers above, so a
// mismatched pair (e.g. aligned new / sized delete) still balances.

namespace alc = mmog::util::alloccount;

void* operator new(std::size_t size) { return alc::allocate(size); }
void* operator new[](std::size_t size) { return alc::allocate(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return alc::allocate(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return alc::allocate(size);
  } catch (...) {
    return nullptr;
  }
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  return alc::allocate_aligned(size, static_cast<std::size_t>(alignment));
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  return alc::allocate_aligned(size, static_cast<std::size_t>(alignment));
}
void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  try {
    return alc::allocate_aligned(size, static_cast<std::size_t>(alignment));
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  try {
    return alc::allocate_aligned(size, static_cast<std::size_t>(alignment));
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { alc::deallocate(p); }
void operator delete[](void* p) noexcept { alc::deallocate(p); }
void operator delete(void* p, std::size_t) noexcept { alc::deallocate(p); }
void operator delete[](void* p, std::size_t) noexcept { alc::deallocate(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  alc::deallocate(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  alc::deallocate(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  alc::deallocate(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  alc::deallocate(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  alc::deallocate(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  alc::deallocate(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  alc::deallocate(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  alc::deallocate(p);
}
