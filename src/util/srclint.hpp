#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace mmog::util::lint {

/// One rule violation at a source line.
struct Finding {
  std::string path;
  std::size_t line = 0;  ///< 1-based
  std::string rule;      ///< catalog name, e.g. "wall-clock"
  std::string message;

  friend bool operator==(const Finding&, const Finding&) = default;
};

/// Where a rule is enforced (see the catalog below; `mmog_lint --list-rules`
/// prints the same table).
enum class RuleScope {
  kProduction,     ///< src/, tools/, bench/, examples/ — never tests/
  kDeterministic,  ///< core/dc/predict/nn/emu paths under src/
  kHotRegion,      ///< inside `mmog-lint: hot-begin(<name>)` … `hot-end`
  kHeaders,        ///< every scanned .hpp/.h, including tests/
  kArchitecture,   ///< module-level include-graph analysis (lint_architecture)
};

/// One entry of the rule catalog (for --list-rules and docs).
struct RuleInfo {
  std::string_view name;
  RuleScope scope;
  std::string_view summary;
};

/// The full rule catalog, in reporting order.
///
/// Determinism family (production scope):
///   rand                 ban rand()/srand(): libc PRNG with hidden global
///                        state — use util::Rng with a plumbed seed
///   random-device        ban std::random_device: per-run entropy breaks
///                        bit-reproducibility
///   wall-clock           ban std::chrono::system_clock, time(), gettimeofday,
///                        localtime/gmtime/ctime/asctime (steady_clock for
///                        measured durations is fine — values only)
///   seed-literal         ban seeding an RNG engine with a bare integer
///                        literal: seeds must be plumbed from configuration
///   unordered-container  [deterministic paths only] ban std::unordered_map /
///                        std::unordered_set (and multi variants)
///
/// Lock/IO discipline (production scope):
///   naked-mutex          ban std::mutex / std::lock_guard / std::unique_lock
///                        / std::condition_variable outside util/mutex.hpp —
///                        the TSA-annotated util::Mutex wrappers are the only
///                        way locking stays visible to the compile-time race
///                        proofs
///   raw-ofstream         ban std::ofstream outside util/atomic_file.* —
///                        artifacts must go through util::AtomicFileWriter so
///                        a crash never publishes a torn file
///
/// Hot-path allocation family (only inside
/// `// mmog-lint: hot-begin(<name>)` … `// mmog-lint: hot-end` regions —
/// the phase implementations that must stay free of per-step heap traffic):
///   hot-new              new / make_unique / make_shared
///   hot-function         std::function construction (type-erased heap state)
///   hot-string           std::string / to_string / stringstream temporaries
///   hot-container        declaring an allocating container (vector, map,
///                        set, deque, list, …) inside the region
///   hot-push-back        push_back/emplace_back on a receiver that is never
///                        .reserve()d anywhere in the file
///
/// Architecture family (lint_architecture over the module include graph):
///   pragma-once          header missing `#pragma once`
///   include-cycle        modules under src/ include each other in a cycle
///   layer-violation      an include edge contradicts the layer DAG derived
///                        from the CMake target link graph
const std::vector<RuleInfo>& rule_catalog();

/// True when `path` has a directory component that places it in a
/// bit-deterministic simulation layer (core, dc, predict, nn, emu).
bool is_deterministic_path(std::string_view path);

/// True when `path` has a "tests" directory component (line rules other than
/// pragma-once are relaxed there: tests legitimately seed literals, use
/// wall-clock helpers, and write scratch files).
bool is_test_path(std::string_view path);

/// The comment/string stripper, exposed for tests: comment bodies and
/// string/char literal contents become spaces, newlines survive, so line
/// numbers and columns line up with the input.
std::string strip_code(std::string_view content);

/// Lints one file's contents. Comments and string/char literals are stripped
/// before matching, so prose and log text never trip a rule. A comment
/// `// mmog-lint: allow(rule[,rule...])` suppresses those rules on its own
/// line — or, when the comment stands alone, on the following line.
std::vector<Finding> lint_source(std::string_view path,
                                 std::string_view content);

/// Recursively lints every .hpp/.cpp/.h/.cc file under `root` (a file path
/// is linted directly). Paths that cannot be read produce a finding with
/// rule "io-error". Results are sorted by path then line.
std::vector<Finding> lint_tree(const std::string& root);

// ---------------------------------------------------------------------------
// Architecture analysis: module include graph vs. the CMake layer DAG.

/// One observed module-level include site: `file:line` includes a header of
/// module `to` from module `from` (repo-relative paths).
struct IncludeSite {
  std::string from_module;
  std::string to_module;
  std::string file;
  std::size_t line = 0;

  friend bool operator==(const IncludeSite&, const IncludeSite&) = default;
};

/// The module graph of a repository tree: source modules under src/ (one per
/// directory, matching the mmog_<name> CMake targets), the consumer roots
/// (tools, bench, tests, examples), the allowed dependency closure derived
/// from `target_link_libraries`, and every observed cross-module include.
struct ArchitectureGraph {
  std::vector<std::string> src_modules;  ///< sorted module names under src/
  /// Direct deps parsed from src/<m>/CMakeLists.txt target_link_libraries.
  std::map<std::string, std::set<std::string>> link_deps;
  /// Transitive closure of link_deps plus self — the set of modules whose
  /// headers module `m` may include.
  std::map<std::string, std::set<std::string>> allowed;
  /// Every cross-module include site, sorted by (from, to, file, line).
  std::vector<IncludeSite> sites;
  /// Files that could not be read while scanning (surfaced as io-error).
  std::vector<Finding> io_errors;
};

/// Scans `repo_root`/{src,tools,bench,tests,examples} for `#include "…"`
/// edges (comments stripped first) and parses each src/<m>/CMakeLists.txt
/// for the target link graph. Paths in the result are repo-relative.
ArchitectureGraph build_architecture_graph(const std::string& repo_root);

/// Architecture rules over a built graph: include-cycle (strongly connected
/// src modules), layer-violation (include edge absent from the link-graph
/// closure; consumer roots may include any module). Sorted by path/line.
std::vector<Finding> lint_architecture(const ArchitectureGraph& graph);

/// Graphviz dot rendering of the module graph: one node per module, one
/// edge per observed cross-module dependency labelled with its include
/// count; edges that violate the layer DAG are drawn red and bold.
std::string to_dot(const ArchitectureGraph& graph);

// ---------------------------------------------------------------------------
// Whole-repository entry point and output formats.

struct RepoLintResult {
  std::vector<Finding> findings;  ///< line rules + architecture, sorted
  ArchitectureGraph graph;
};

/// Full-suite run over a repository checkout: line rules over src/, tools/,
/// bench/ and examples/, pragma-once over tests/ as well, plus the
/// architecture analysis. Finding paths are repo-relative.
RepoLintResult lint_repo(const std::string& repo_root);

/// Stable-schema JSON: {"schema":1,"kind":"mmog-lint","findings":[…]}.
std::string findings_to_json(const std::vector<Finding>& findings);

/// SARIF 2.1.0 (static analysis results interchange format), one run with
/// the full rule catalog, suitable for GitHub code-scanning upload.
std::string findings_to_sarif(const std::vector<Finding>& findings);

}  // namespace mmog::util::lint
