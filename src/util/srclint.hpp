#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace mmog::util::lint {

/// One rule violation at a source line.
struct Finding {
  std::string path;
  std::size_t line = 0;  ///< 1-based
  std::string rule;      ///< catalog name, e.g. "wall-clock"
  std::string message;

  friend bool operator==(const Finding&, const Finding&) = default;
};

/// One entry of the rule catalog (for --list-rules and docs).
struct RuleInfo {
  std::string_view name;
  bool deterministic_only;  ///< enforced only under core/ dc/ predict/ nn/ emu/
  std::string_view summary;
};

/// The determinism-lint catalog, in reporting order:
///   rand                 ban rand()/srand(): libc PRNG with hidden global
///                        state — use util::Rng with a plumbed seed
///   random-device        ban std::random_device: per-run entropy breaks
///                        bit-reproducibility
///   wall-clock           ban std::chrono::system_clock, time(), gettimeofday,
///                        localtime/gmtime/ctime/asctime: wall-clock reads
///                        make runs time-of-day dependent (steady_clock for
///                        measured durations is fine — values only)
///   seed-literal         ban constructing an RNG engine (util::Rng,
///                        std::mt19937[_64], std::default_random_engine,
///                        std::minstd_rand) or calling .seed() with a bare
///                        integer literal: seeds must be plumbed from
///                        configuration, not invented at the call site
///   unordered-container  [deterministic paths only] ban std::unordered_map /
///                        std::unordered_set (and multi variants): their
///                        iteration order is implementation-defined, which
///                        leaks nondeterminism into any loop over them — use
///                        std::map / sorted vectors in simulation code
const std::vector<RuleInfo>& rule_catalog();

/// True when `path` has a directory component that places it in a
/// bit-deterministic simulation layer (core, dc, predict, nn, emu).
bool is_deterministic_path(std::string_view path);

/// Lints one file's contents. Comments and string/char literals are stripped
/// before matching, so prose and log text never trip a rule. A comment
/// `// mmog-lint: allow(rule[,rule...])` suppresses those rules on its own
/// line — or, when the comment stands alone, on the following line.
/// Deterministic-only rules run when is_deterministic_path(path) holds.
std::vector<Finding> lint_source(std::string_view path,
                                 std::string_view content);

/// Recursively lints every .hpp/.cpp/.h/.cc file under `root` (a file path
/// is linted directly). Paths that cannot be read produce a finding with
/// rule "io-error". Results are sorted by path then line.
std::vector<Finding> lint_tree(const std::string& root);

}  // namespace mmog::util::lint
