#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace mmog::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << "  ";
      if (c == 0) {
        os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      } else {
        os << std::right << std::setw(static_cast<int>(widths[c])) << row[c];
      }
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += 2 * (widths.empty() ? 0 : widths.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TextTable::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += "\"\"";
      else q += ch;
    }
    q += '"';
    return q;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << quote(row[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.to_string();
}

}  // namespace mmog::util
