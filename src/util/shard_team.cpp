#include "util/shard_team.hpp"

#include <algorithm>

namespace mmog::util {

ShardTeam::ShardTeam(std::size_t threads)
    : threads_(std::max<std::size_t>(1, threads)) {
  workers_.reserve(threads_ - 1);
  for (std::size_t s = 1; s < threads_; ++s) {
    workers_.emplace_back([this, s] { worker_loop(s); });
  }
}

ShardTeam::~ShardTeam() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
    work_ready_.notify_all();
  }
  for (auto& worker : workers_) worker.join();
}

void ShardTeam::run(Task task, void* ctx) {
  if (threads_ == 1) {
    task(ctx, 0, 1);
    return;
  }
  {
    MutexLock lock(mutex_);
    task_ = task;
    ctx_ = ctx;
    remaining_ = threads_ - 1;
    ++epoch_;
    work_ready_.notify_all();
  }
  // The caller is shard 0: it works instead of blocking, so a team of N
  // uses exactly N threads.
  try {
    task(ctx, 0, threads_);
  } catch (...) {
    MutexLock lock(mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  std::exception_ptr error;
  {
    MutexLock lock(mutex_);
    while (remaining_ > 0) work_done_.wait(mutex_);
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void ShardTeam::worker_loop(std::size_t shard) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    Task task = nullptr;
    void* ctx = nullptr;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && epoch_ == seen_epoch) work_ready_.wait(mutex_);
      if (stopping_) return;
      seen_epoch = epoch_;
      task = task_;
      ctx = ctx_;
    }
    try {
      task(ctx, shard, threads_);
    } catch (...) {
      MutexLock lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      MutexLock lock(mutex_);
      if (--remaining_ == 0) work_done_.notify_one();
    }
  }
}

}  // namespace mmog::util
