#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mmog::util {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 1) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q not in [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double interquartile_range(std::span<const double> xs) {
  return quantile(xs, 0.75) - quantile(xs, 0.25);
}

namespace {

/// Quantile of an already-sorted sample (linear interpolation).
double quantile_sorted(std::span<const double> sorted, double q) noexcept {
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  s.mean = mean(xs);
  s.stddev = std::sqrt(variance(xs));
  s.median = quantile_sorted(sorted, 0.5);
  s.q1 = quantile_sorted(sorted, 0.25);
  s.q3 = quantile_sorted(sorted, 0.75);
  return s;
}

std::vector<double> autocorrelation(std::span<const double> xs,
                                    std::size_t max_lag) {
  std::vector<double> acf(max_lag + 1, 0.0);
  const std::size_t n = xs.size();
  if (n == 0) return acf;
  const double m = mean(xs);
  double denom = 0.0;
  for (double x : xs) denom += (x - m) * (x - m);
  if (denom <= 0.0) return acf;  // constant series
  for (std::size_t lag = 0; lag <= max_lag && lag < n; ++lag) {
    double num = 0.0;
    for (std::size_t t = lag; t < n; ++t) {
      num += (xs[t] - m) * (xs[t - lag] - m);
    }
    acf[lag] = num / denom;
  }
  return acf;
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> xs) {
  std::vector<CdfPoint> cdf;
  if (xs.empty()) return cdf;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (!cdf.empty() && cdf.back().value == sorted[i]) {
      cdf.back().fraction = static_cast<double>(i + 1) / n;
    } else {
      cdf.push_back({sorted[i], static_cast<double>(i + 1) / n});
    }
  }
  return cdf;
}

double cdf_at(std::span<const CdfPoint> cdf, double value) noexcept {
  double frac = 0.0;
  for (const auto& p : cdf) {
    if (p.value <= value) {
      frac = p.fraction;
    } else {
      break;
    }
  }
  return frac;
}

std::vector<std::size_t> histogram(std::span<const double> xs, double lo,
                                   double hi, std::size_t bins) {
  std::vector<std::size_t> h(bins, 0);
  if (bins == 0 || hi <= lo) return h;
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double x : xs) {
    auto idx = static_cast<std::ptrdiff_t>((x - lo) / width);
    idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                     static_cast<std::ptrdiff_t>(bins) - 1);
    ++h[static_cast<std::size_t>(idx)];
  }
  return h;
}

double pearson(std::span<const double> xs, std::span<const double> ys) noexcept {
  if (xs.size() != ys.size() || xs.empty()) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace mmog::util
