#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace mmog::util {

/// Crash-safe file writer: content is buffered in memory and only reaches
/// the target path through a temp-file + fsync + rename commit, so readers
/// never observe a truncated or half-written artifact — an interrupted run
/// leaves either the previous file or the new one, never a torn mix.
///
/// With `keep_previous`, the displaced generation survives the commit at
/// "<path>.prev", giving checkpoint consumers a fallback when the newest
/// file turns out corrupt.
///
/// Usage:
///   AtomicFileWriter w(path);
///   w.stream() << payload;
///   w.commit();
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path);

  /// Buffer to write the file's content into before commit().
  std::ostream& stream() { return buf_; }

  /// Publishes the buffered content at the target path: writes
  /// "<path>.tmp", fsyncs it, then renames over the target (atomically
  /// replacing any existing file). When `keep_previous` is set and the
  /// target already exists, that file is first renamed to "<path>.prev".
  /// Throws std::runtime_error on any I/O failure; the target is left
  /// untouched when the commit fails before the final rename.
  void commit(bool keep_previous = false);

  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::ostringstream buf_;
  bool committed_ = false;
};

/// One-shot helper: atomically writes `content` at `path`.
void write_file_atomic(const std::string& path, std::string_view content,
                       bool keep_previous = false);

}  // namespace mmog::util
