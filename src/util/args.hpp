#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mmog::util {

/// Minimal command-line parser for the repo's CLI tools: long options of
/// the form `--name value` or `--flag`, collected positionals, and typed
/// accessors with defaults.
class Args {
 public:
  /// Parses argv. An option token starts with "--"; a token following an
  /// option that itself starts with "--" makes the former a boolean flag.
  Args(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  /// String option or `fallback` when absent.
  std::string get(const std::string& name, const std::string& fallback) const;

  /// Numeric options; throw std::invalid_argument on non-numeric values.
  double get_double(const std::string& name, double fallback) const;
  long get_long(const std::string& name, long fallback) const;

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }
  const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace mmog::util
