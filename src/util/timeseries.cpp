#include "util/timeseries.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmog::util {

TimeSeries::TimeSeries(double step_seconds, std::vector<double> values)
    : step_seconds_(step_seconds), values_(std::move(values)) {
  if (step_seconds <= 0.0) {
    throw std::invalid_argument("TimeSeries: step must be positive");
  }
}

TimeSeries TimeSeries::slice(std::size_t first, std::size_t count) const {
  TimeSeries out(step_seconds_);
  if (first >= values_.size()) return out;
  const std::size_t last = std::min(values_.size(), first + count);
  out.values_.assign(values_.begin() + static_cast<std::ptrdiff_t>(first),
                     values_.begin() + static_cast<std::ptrdiff_t>(last));
  return out;
}

TimeSeries TimeSeries::downsample_mean(std::size_t factor) const {
  if (factor == 0) throw std::invalid_argument("downsample_mean: factor == 0");
  TimeSeries out(step_seconds_ * static_cast<double>(factor));
  for (std::size_t i = 0; i < values_.size(); i += factor) {
    const std::size_t end = std::min(values_.size(), i + factor);
    double s = 0.0;
    for (std::size_t j = i; j < end; ++j) s += values_[j];
    out.push_back(s / static_cast<double>(end - i));
  }
  return out;
}

TimeSeries TimeSeries::sum(std::span<const TimeSeries> series) {
  if (series.empty()) return TimeSeries();
  TimeSeries out(series.front().step_seconds(),
                 std::vector<double>(series.front().size(), 0.0));
  for (const auto& s : series) {
    if (s.size() != out.size() || s.step_seconds() != out.step_seconds()) {
      throw std::invalid_argument("TimeSeries::sum: mismatched series");
    }
    for (std::size_t i = 0; i < s.size(); ++i) out[i] += s[i];
  }
  return out;
}

double TimeSeries::max() const noexcept {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

double TimeSeries::min() const noexcept {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double TimeSeries::mean() const noexcept {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

}  // namespace mmog::util
