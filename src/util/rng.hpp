#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace mmog::util {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// SplitMix64). All stochastic components of the library take an explicit
/// `Rng` so experiments are reproducible bit-for-bit.
///
/// Satisfies the UniformRandomBitGenerator requirements, so it can also be
/// used with <random> distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator. Identical seeds produce identical streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive both ends).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller (mean 0, stddev 1).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Exponential with the given rate lambda (> 0).
  double exponential(double lambda) noexcept;

  /// Log-normal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 60).
  std::uint64_t poisson(double mean) noexcept;

  /// Index in [0, weights.size()) drawn proportionally to `weights`.
  /// Throws std::invalid_argument if weights is empty or sums to <= 0.
  std::size_t weighted_choice(std::span<const double> weights);

  /// Derives an independent child generator; streams of parent and child do
  /// not overlap in practice (fresh SplitMix64 reseed).
  Rng fork() noexcept;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Fisher-Yates shuffle of a vector using the given generator.
template <typename T>
void shuffle(std::vector<T>& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    using std::swap;
    swap(v[i - 1], v[j]);
  }
}

}  // namespace mmog::util
