#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace mmog::util {

/// A parsed CSV document: a header row plus data rows of strings.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column; throws std::out_of_range when missing.
  std::size_t column(std::string_view name) const;

  std::size_t row_count() const noexcept { return rows.size(); }
};

/// Parses RFC-4180-style CSV from a stream: comma separators, optional
/// double-quote quoting with "" escapes, \n or \r\n line ends. The first
/// record is the header. Throws std::runtime_error on malformed quoting.
CsvDocument read_csv(std::istream& in);

/// Convenience: parses a file; throws std::runtime_error if unreadable.
CsvDocument read_csv_file(const std::string& path);

/// Writes one CSV record, quoting fields that need it.
void write_csv_row(std::ostream& out, const std::vector<std::string>& row);

/// Escapes a single field per RFC 4180 (quotes only when necessary).
std::string csv_escape(std::string_view field);

}  // namespace mmog::util
