#include "util/csv.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace mmog::util {

std::size_t CsvDocument::column(std::string_view name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw std::out_of_range("CsvDocument: no column named " + std::string(name));
}

namespace {

/// Splits one logical CSV record starting at stream position; handles
/// quoted fields spanning line breaks.
bool read_record(std::istream& in, std::vector<std::string>& fields) {
  fields.clear();
  std::string field;
  bool in_quotes = false;
  bool any = false;
  int c;
  while ((c = in.get()) != std::char_traits<char>::eof()) {
    any = true;
    const char ch = static_cast<char>(c);
    if (in_quotes) {
      if (ch == '"') {
        if (in.peek() == '"') {
          field += '"';
          in.get();
        } else {
          in_quotes = false;
        }
      } else {
        field += ch;
      }
      continue;
    }
    if (ch == '"') {
      if (!field.empty()) {
        throw std::runtime_error("read_csv: quote inside unquoted field");
      }
      in_quotes = true;
    } else if (ch == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (ch == '\n') {
      break;
    } else if (ch == '\r') {
      if (in.peek() == '\n') in.get();
      break;
    } else {
      field += ch;
    }
  }
  if (in_quotes) throw std::runtime_error("read_csv: unterminated quote");
  if (!any) return false;
  fields.push_back(std::move(field));
  return true;
}

}  // namespace

CsvDocument read_csv(std::istream& in) {
  CsvDocument doc;
  std::vector<std::string> record;
  if (read_record(in, record)) doc.header = std::move(record);
  while (read_record(in, record)) {
    // Skip completely empty trailing lines.
    if (record.size() == 1 && record[0].empty()) continue;
    doc.rows.push_back(std::move(record));
  }
  return doc;
}

CsvDocument read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv_file: cannot open " + path);
  return read_csv(in);
}

std::string csv_escape(std::string_view field) {
  if (field.find_first_of(",\"\r\n") == std::string_view::npos) {
    return std::string(field);
  }
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

void write_csv_row(std::ostream& out, const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out << ',';
    out << csv_escape(row[i]);
  }
  out << '\n';
}

}  // namespace mmog::util
