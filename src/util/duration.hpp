#pragma once

#include <string_view>

namespace mmog::util {

/// Parses a duration into 2-minute simulation steps. Accepts a plain
/// number (steps) or a number with one of the suffixes s/m/h/d/w
/// ("90s", "30m", "2h", "4d", "1w"). Throws std::invalid_argument on
/// malformed input or non-positive durations (zero is accepted only with
/// `allow_zero`, for window start offsets). The thrown message is prefixed
/// with `what` so CLI grammars (--fault, --alert) name their own context.
double parse_duration_steps(std::string_view text, bool allow_zero = false,
                            std::string_view what = "duration");

}  // namespace mmog::util
