#include "util/srclint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace mmog::util::lint {
namespace {

bool is_word(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool has_path_component(std::string_view path, std::string_view component) {
  std::size_t begin = 0;
  while (begin <= path.size()) {
    std::size_t end = path.find('/', begin);
    if (end == std::string_view::npos) end = path.size();
    if (path.substr(begin, end - begin) == component) return true;
    begin = end + 1;
  }
  return false;
}

/// Result of the comment/string stripper: `code` mirrors the input byte for
/// byte except that comment bodies and string/char literal contents become
/// spaces (newlines survive, so line numbers line up); `comment_text[i]` is
/// the concatenated comment text that *starts* on 1-based line i+1; and
/// `line_has_code[i]` says whether that line kept any non-whitespace code.
struct Stripped {
  std::string code;
  std::vector<std::string> comment_text;
  std::vector<bool> line_has_code;
};

/// True when the `"` at `in[quote]` opens a raw string literal: the
/// identifier token ending immediately before it must be exactly one of the
/// raw-string prefixes R, LR, uR, UR, u8R. An identifier that merely *ends*
/// in one of these (WER"…", FOO_R"…", macro tails) is an ordinary string
/// following an identifier, not a raw literal.
bool is_raw_string_prefix(std::string_view in, std::size_t quote) {
  std::size_t begin = quote;
  while (begin > 0 && is_word(in[begin - 1])) --begin;
  const std::string_view token = in.substr(begin, quote - begin);
  return token == "R" || token == "LR" || token == "uR" || token == "UR" ||
         token == "u8R";
}

Stripped strip(std::string_view in) {
  Stripped out;
  out.code.reserve(in.size());
  std::size_t line = 0;  // 0-based index of the current line
  auto ensure_line = [&](std::size_t l) {
    if (out.comment_text.size() <= l) {
      out.comment_text.resize(l + 1);
      out.line_has_code.resize(l + 1, false);
    }
  };
  ensure_line(0);

  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  std::size_t comment_line = 0;  // line the active comment started on
  std::string raw_delim;         // for R"delim( ... )delim"

  std::size_t i = 0;
  const auto n = in.size();
  auto emit = [&](char c) {
    out.code += c;
    if (!std::isspace(static_cast<unsigned char>(c))) {
      out.line_has_code[line] = true;
    }
  };
  auto blank = [&](char c) { out.code += c == '\n' ? '\n' : ' '; };

  while (i < n) {
    const char c = in[i];
    if (c == '\n') {
      ++line;
      ensure_line(line);
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && i + 1 < n && in[i + 1] == '/') {
          state = State::kLine;
          comment_line = line;
          blank(c);
          blank(in[++i]);
        } else if (c == '/' && i + 1 < n && in[i + 1] == '*') {
          state = State::kBlock;
          comment_line = line;
          blank(c);
          blank(in[++i]);
        } else if (c == '"' && is_raw_string_prefix(in, i)) {
          // Raw string literal: R"delim( ... )delim". The delimiter (at most
          // 16 chars, never a newline or parenthesis per the grammar) is
          // blanked so columns keep lining up; an unterminated delimiter or
          // body simply blanks through to EOF.
          state = State::kRaw;
          raw_delim.clear();
          emit(c);
          while (i + 1 < n && in[i + 1] != '(' && in[i + 1] != '\n' &&
                 raw_delim.size() < 16) {
            raw_delim += in[i + 1];
            ++i;
            blank(in[i]);
          }
          if (i + 1 < n && in[i + 1] == '(') {
            ++i;
            blank(in[i]);
          }
        } else if (c == '"') {
          state = State::kString;
          emit(c);
        } else if (c == '\'' && (i == 0 || !is_word(in[i - 1]))) {
          // A char literal, not a C++14 digit separator (1'000'000).
          state = State::kChar;
          emit(c);
        } else {
          emit(c);
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
          blank(c);
        } else {
          out.comment_text[comment_line] += c;
          blank(c);
        }
        break;
      case State::kBlock:
        if (c == '*' && i + 1 < n && in[i + 1] == '/') {
          state = State::kCode;
          blank(c);
          blank(in[++i]);
        } else {
          out.comment_text[comment_line] += c;
          blank(c);
        }
        break;
      case State::kString:
        if (c == '\\' && i + 1 < n) {
          blank(c);
          blank(in[++i]);
        } else if (c == '"') {
          state = State::kCode;
          emit(c);
        } else {
          blank(c);
        }
        break;
      case State::kChar:
        if (c == '\\' && i + 1 < n) {
          blank(c);
          blank(in[++i]);
        } else if (c == '\'') {
          state = State::kCode;
          emit(c);
        } else {
          blank(c);
        }
        break;
      case State::kRaw:
        if (c == ')' && in.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
            i + 1 + raw_delim.size() < n && in[i + 1 + raw_delim.size()] == '"') {
          for (std::size_t k = 0; k < raw_delim.size() + 1; ++k) blank(in[i + k]);
          i += raw_delim.size() + 1;
          emit('"');
          state = State::kCode;
        } else {
          blank(c);
        }
        break;
    }
    ++i;
  }
  return out;
}

/// First position >= from where `name` appears as a whole word; npos if none.
std::size_t find_token(std::string_view line, std::string_view name,
                       std::size_t from = 0) {
  for (std::size_t pos = line.find(name, from); pos != std::string_view::npos;
       pos = line.find(name, pos + 1)) {
    const bool left_ok = pos == 0 || !is_word(line[pos - 1]);
    const std::size_t end = pos + name.size();
    const bool right_ok = end >= line.size() || !is_word(line[end]);
    if (left_ok && right_ok) return pos;
  }
  return std::string_view::npos;
}

std::size_t skip_ws(std::string_view s, std::size_t pos) {
  while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t')) ++pos;
  return pos;
}

/// True when `name` appears as a word immediately followed by '(' — i.e. a
/// call (or declaration, which is equally banned for the banned names).
bool has_call(std::string_view line, std::string_view name) {
  for (std::size_t pos = find_token(line, name); pos != std::string_view::npos;
       pos = find_token(line, name, pos + 1)) {
    const std::size_t after = skip_ws(line, pos + name.size());
    if (after < line.size() && line[after] == '(') return true;
  }
  return false;
}

/// True when `std::<name>` appears with a whole-word right boundary (so
/// "std::string" never matches inside "std::string_view").
bool has_std_token(std::string_view line, std::string_view name) {
  std::string qualified;
  qualified.reserve(5 + name.size());
  qualified += "std::";
  qualified += name;
  for (std::size_t pos = line.find(qualified); pos != std::string_view::npos;
       pos = line.find(qualified, pos + 1)) {
    const bool left_ok = pos == 0 || (!is_word(line[pos - 1]) &&
                                      line[pos - 1] != ':');
    const std::size_t end = pos + qualified.size();
    const bool right_ok = end >= line.size() || !is_word(line[end]);
    if (left_ok && right_ok) return pos != std::string_view::npos;
  }
  return false;
}

/// True when `name` (an RNG engine or .seed) is invoked with a bare integer
/// literal argument: `seed(0xabc)`, or the declaration forms
/// `util::Rng rng(42)` / `std::mt19937 gen{12345}` — one intervening
/// identifier (the variable name) is skipped between the engine and the
/// argument list.
bool has_literal_seed(std::string_view line, std::string_view name) {
  for (std::size_t pos = find_token(line, name); pos != std::string_view::npos;
       pos = find_token(line, name, pos + 1)) {
    std::size_t p = skip_ws(line, pos + name.size());
    if (p < line.size() && std::isalpha(static_cast<unsigned char>(line[p])) != 0) {
      while (p < line.size() && is_word(line[p])) ++p;  // variable name
      p = skip_ws(line, p);
    }
    if (p >= line.size() || (line[p] != '(' && line[p] != '{')) continue;
    const char close = line[p] == '(' ? ')' : '}';
    p = skip_ws(line, p + 1);
    if (p >= line.size() || std::isdigit(static_cast<unsigned char>(line[p])) == 0) {
      continue;
    }
    while (p < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[p])) != 0 ||
            line[p] == '\'')) {
      ++p;  // digits, hex letters, 0x/0b prefixes, u/l suffixes, separators
    }
    p = skip_ws(line, p);
    if (p < line.size() && line[p] == close) return true;
  }
  return false;
}

const std::string_view kDeterministicDirs[] = {"core", "dc", "predict", "nn",
                                               "emu"};

/// Every directive a comment can carry for the linter.
struct Directives {
  std::set<std::string> allows;
  std::string hot_begin;  ///< region name; empty = no begin directive
  bool hot_end = false;
};

/// Parses `mmog-lint: <directive>` in a comment: allow(rule[,rule...]),
/// hot-begin(name), hot-end. The key must be the first thing in the comment
/// (after whitespace and `/`/`*` continuation decoration) so that prose
/// which merely *mentions* the directive syntax — like the rule catalog's
/// own documentation — never activates it.
Directives parse_directives(std::string_view comment) {
  Directives out;
  static constexpr std::string_view kKey = "mmog-lint:";
  std::size_t lead = 0;
  while (lead < comment.size() &&
         (comment[lead] == ' ' || comment[lead] == '\t' ||
          comment[lead] == '/' || comment[lead] == '*')) {
    ++lead;
  }
  if (comment.compare(lead, kKey.size(), kKey) != 0) return out;
  for (std::size_t at = lead; at != std::string_view::npos;
       at = comment.find(kKey, at + 1)) {
    std::size_t p = skip_ws(comment, at + kKey.size());
    if (comment.compare(p, 7, "hot-end") == 0) {
      out.hot_end = true;
      continue;
    }
    std::string_view verb;
    if (comment.compare(p, 9, "hot-begin") == 0) {
      verb = "hot-begin";
    } else if (comment.compare(p, 5, "allow") == 0) {
      verb = "allow";
    } else {
      continue;
    }
    p = skip_ws(comment, p + verb.size());
    if (p >= comment.size() || comment[p] != '(') continue;
    const std::size_t end = comment.find(')', p);
    if (end == std::string_view::npos) continue;
    std::string name;
    for (std::size_t k = p + 1; k <= end; ++k) {
      const char c = k == end ? ',' : comment[k];
      if (c == ',') {
        if (!name.empty()) {
          if (verb == "allow") {
            out.allows.insert(name);
          } else {
            out.hot_begin = name;
          }
        }
        name.clear();
      } else if (!std::isspace(static_cast<unsigned char>(c))) {
        name += c;
      }
    }
  }
  return out;
}

/// Identifier ending at `end` (exclusive) in `line`; empty when the
/// character run before `end` is not an identifier.
std::string_view ident_before(std::string_view line, std::size_t end) {
  std::size_t begin = end;
  while (begin > 0 && is_word(line[begin - 1])) --begin;
  return line.substr(begin, end - begin);
}

/// Collects every identifier that receives a `.reserve(` / `->reserve(`
/// call anywhere in the stripped code — hot-path push_back on these is
/// amortized-free and not flagged.
std::set<std::string> reserved_receivers(std::string_view code) {
  std::set<std::string> out;
  for (std::size_t pos = find_token(code, "reserve");
       pos != std::string_view::npos;
       pos = find_token(code, "reserve", pos + 1)) {
    if (skip_ws(code, pos + 7) >= code.size() ||
        code[skip_ws(code, pos + 7)] != '(') {
      continue;
    }
    std::size_t recv_end = pos;
    if (recv_end >= 1 && code[recv_end - 1] == '.') {
      recv_end -= 1;
    } else if (recv_end >= 2 && code[recv_end - 2] == '-' &&
               code[recv_end - 1] == '>') {
      recv_end -= 2;
    } else {
      continue;
    }
    const auto ident = ident_before(code, recv_end);
    if (!ident.empty()) out.insert(std::string(ident));
  }
  return out;
}

const std::string_view kHotContainers[] = {
    "vector", "map",  "multimap", "set",           "multiset",
    "deque",  "list", "forward_list", "unordered_map", "unordered_set",
    "unordered_multimap", "unordered_multiset", "basic_string"};

const std::string_view kNakedMutexTypes[] = {
    "mutex",       "timed_mutex",        "recursive_mutex",
    "shared_mutex", "lock_guard",        "unique_lock",
    "scoped_lock", "condition_variable", "condition_variable_any"};

std::string_view scope_label(RuleScope scope) {
  switch (scope) {
    case RuleScope::kProduction:
      return "src+tools+bench+examples";
    case RuleScope::kDeterministic:
      return "core/dc/predict/nn/emu";
    case RuleScope::kHotRegion:
      return "hot-begin/hot-end regions";
    case RuleScope::kHeaders:
      return "all headers";
    case RuleScope::kArchitecture:
      return "module include graph";
  }
  return "";
}

}  // namespace

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {"rand", RuleScope::kProduction,
       "rand()/srand() use hidden global state; take a util::Rng instead"},
      {"random-device", RuleScope::kProduction,
       "std::random_device draws fresh entropy every run; plumb a seed"},
      {"wall-clock", RuleScope::kProduction,
       "wall-clock reads (system_clock, time(), localtime, ...) make runs "
       "time-of-day dependent; use steady_clock for measured durations"},
      {"seed-literal", RuleScope::kProduction,
       "RNG seeded with a bare integer literal; seeds must come from "
       "configuration so experiments stay reproducible end to end"},
      {"unordered-container", RuleScope::kDeterministic,
       "unordered container in a deterministic simulation path; iteration "
       "order is implementation-defined — use std::map or a sorted vector"},
      {"naked-mutex", RuleScope::kProduction,
       "raw std::mutex/lock primitives are invisible to the thread-safety "
       "analysis; use the annotated util::Mutex/MutexLock/CondVar wrappers"},
      {"raw-ofstream", RuleScope::kProduction,
       "std::ofstream writes can publish torn artifacts on crash; go "
       "through util::AtomicFileWriter (temp + fsync + rename)"},
      {"pragma-once", RuleScope::kHeaders,
       "header missing #pragma once"},
      {"hot-new", RuleScope::kHotRegion,
       "heap allocation (new/make_unique/make_shared) in a hot phase "
       "region; hot phases must stay allocation-free per step"},
      {"hot-function", RuleScope::kHotRegion,
       "std::function in a hot phase region type-erases into heap state; "
       "use a template parameter or function pointer"},
      {"hot-string", RuleScope::kHotRegion,
       "std::string/to_string/stringstream temporary in a hot phase "
       "region allocates per step"},
      {"hot-container", RuleScope::kHotRegion,
       "allocating container declared inside a hot phase region; hoist it "
       "to reused scratch owned outside the per-step loop"},
      {"hot-push-back", RuleScope::kHotRegion,
       "push_back/emplace_back in a hot phase region on a receiver that is "
       "never reserve()d in this file"},
      {"include-cycle", RuleScope::kArchitecture,
       "src/ modules include each other in a cycle; the module layering "
       "must stay a DAG"},
      {"layer-violation", RuleScope::kArchitecture,
       "include edge contradicts the layer DAG derived from the CMake "
       "target link graph"},
  };
  return kCatalog;
}

bool is_deterministic_path(std::string_view path) {
  for (const std::string_view dir : kDeterministicDirs) {
    if (has_path_component(path, dir)) return true;
  }
  return false;
}

bool is_test_path(std::string_view path) {
  return has_path_component(path, "tests");
}

std::string strip_code(std::string_view content) {
  return strip(content).code;
}

std::vector<Finding> lint_source(std::string_view path,
                                 std::string_view content) {
  const Stripped stripped = strip(content);
  const bool deterministic = is_deterministic_path(path);
  const bool test = is_test_path(path);
  const bool header = ends_with(path, ".hpp") || ends_with(path, ".h");

  // Directives per 0-based line, from that line's comments; hot regions are
  // the lines strictly between a hot-begin and its hot-end.
  std::vector<Directives> directives(stripped.comment_text.size());
  std::vector<std::string> hot(stripped.comment_text.size());
  std::string region;
  for (std::size_t l = 0; l < stripped.comment_text.size(); ++l) {
    if (!stripped.comment_text[l].empty()) {
      directives[l] = parse_directives(stripped.comment_text[l]);
    }
    if (directives[l].hot_end) region.clear();
    hot[l] = region;
    if (!directives[l].hot_begin.empty()) region = directives[l].hot_begin;
  }

  const std::set<std::string> reserved = reserved_receivers(stripped.code);

  std::vector<Finding> findings;
  auto allowed = [&](std::size_t l, std::string_view rule) {
    if (l < directives.size() &&
        directives[l].allows.count(std::string(rule)) > 0) {
      return true;
    }
    // A standalone allow comment (no code on its line) covers the next line.
    return l > 0 && l - 1 < directives.size() &&
           directives[l - 1].allows.count(std::string(rule)) > 0 &&
           !stripped.line_has_code[l - 1];
  };
  auto report = [&](std::size_t l, std::string_view rule,
                    std::string message) {
    if (allowed(l, rule)) return;
    findings.push_back(
        {std::string(path), l + 1, std::string(rule), std::move(message)});
  };

  if (header && stripped.code.find("#pragma once") == std::string::npos &&
      !allowed(0, "pragma-once")) {
    findings.push_back({std::string(path), 1, "pragma-once",
                        "header missing #pragma once"});
  }

  std::istringstream lines{stripped.code};
  std::string raw_line;
  for (std::size_t l = 0; std::getline(lines, raw_line); ++l) {
    const std::string_view line = raw_line;
    const bool in_hot = l < hot.size() && !hot[l].empty();
    const std::string_view hot_name = in_hot ? hot[l] : std::string_view{};

    // --- hot-path allocation rules: only inside marked regions. ---
    if (in_hot) {
      if (find_token(line, "new") != std::string_view::npos ||
          find_token(line, "make_unique") != std::string_view::npos ||
          find_token(line, "make_shared") != std::string_view::npos) {
        report(l, "hot-new",
               "heap allocation in hot path '" + std::string(hot_name) +
                   "': the phase must stay allocation-free per step");
      }
      if (line.find("std::function") != std::string_view::npos) {
        report(l, "hot-function",
               "std::function in hot path '" + std::string(hot_name) +
                   "' type-erases into heap state; take a template "
                   "parameter instead");
      }
      if (has_std_token(line, "string") || has_call(line, "to_string") ||
          line.find("ostringstream") != std::string_view::npos ||
          line.find("stringstream") != std::string_view::npos) {
        report(l, "hot-string",
               "string temporary in hot path '" + std::string(hot_name) +
                   "' allocates per step");
      }
      for (const std::string_view container : kHotContainers) {
        if (has_std_token(line, container)) {
          report(l, "hot-container",
                 "std::" + std::string(container) + " in hot path '" +
                     std::string(hot_name) +
                     "': hoist it to reused scratch outside the loop");
          break;
        }
      }
      for (const std::string_view grower : {std::string_view("push_back"),
                                            std::string_view("emplace_back")}) {
        for (std::size_t pos = find_token(line, grower);
             pos != std::string_view::npos;
             pos = find_token(line, grower, pos + 1)) {
          std::size_t recv_end = pos;
          if (recv_end >= 1 && line[recv_end - 1] == '.') {
            recv_end -= 1;
          } else if (recv_end >= 2 && line[recv_end - 2] == '-' &&
                     line[recv_end - 1] == '>') {
            recv_end -= 2;
          } else {
            continue;
          }
          const auto ident = ident_before(line, recv_end);
          if (ident.empty() || reserved.count(std::string(ident)) > 0) {
            continue;
          }
          report(l, "hot-push-back",
                 std::string(grower) + " on '" + std::string(ident) +
                     "' in hot path '" + std::string(hot_name) +
                     "' with no reserve() anywhere in this file");
          break;
        }
      }
    }

    // --- determinism + discipline rules: production scope only. ---
    if (test) continue;

    if (has_call(line, "rand") || has_call(line, "srand")) {
      report(l, "rand", "rand()/srand() banned: use util::Rng with a "
                        "plumbed seed");
    }
    if (line.find("random_device") != std::string_view::npos) {
      report(l, "random-device",
             "std::random_device banned: nondeterministic across runs");
    }
    if (line.find("system_clock") != std::string_view::npos ||
        has_call(line, "time") || has_call(line, "gettimeofday") ||
        has_call(line, "localtime") || has_call(line, "gmtime") ||
        has_call(line, "ctime") || has_call(line, "asctime")) {
      report(l, "wall-clock",
             "wall-clock read banned: simulation output must not depend on "
             "time of day (steady_clock is fine for measured durations)");
    }
    for (const std::string_view engine :
         {std::string_view("Rng"), std::string_view("mt19937"),
          std::string_view("mt19937_64"),
          std::string_view("default_random_engine"),
          std::string_view("minstd_rand"), std::string_view("minstd_rand0"),
          std::string_view("seed")}) {
      if (has_literal_seed(line, engine)) {
        report(l, "seed-literal",
               "RNG seeded with an integer literal: plumb the seed from "
               "configuration instead of inventing it here");
        break;
      }
    }
    if (deterministic &&
        (line.find("unordered_map") != std::string_view::npos ||
         line.find("unordered_set") != std::string_view::npos ||
         line.find("unordered_multi") != std::string_view::npos)) {
      report(l, "unordered-container",
             "unordered container in a deterministic path: iteration order "
             "is implementation-defined — use std::map or a sorted vector");
    }
    if (!ends_with(path, "util/mutex.hpp")) {
      for (const std::string_view type : kNakedMutexTypes) {
        if (has_std_token(line, type)) {
          report(l, "naked-mutex",
                 "std::" + std::string(type) +
                     " is invisible to the thread-safety analysis; use "
                     "util::Mutex / util::MutexLock / util::CondVar");
          break;
        }
      }
    }
    if (path.find("util/atomic_file.") == std::string_view::npos &&
        (has_std_token(line, "ofstream") || has_std_token(line, "fstream"))) {
      report(l, "raw-ofstream",
             "raw file stream can publish a torn artifact on crash; write "
             "through util::AtomicFileWriter");
    }
  }
  return findings;
}

std::vector<Finding> lint_tree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  const auto wanted = [](const fs::path& p) {
    const auto ext = p.extension().string();
    return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
  };
  std::error_code ec;
  if (fs::is_directory(root, ec)) {
    for (fs::recursive_directory_iterator it(root, ec), end; it != end;
         it.increment(ec)) {
      if (!ec && it->is_regular_file() && wanted(it->path())) {
        files.push_back(it->path().generic_string());
      }
    }
  } else {
    files.push_back(root);
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      findings.push_back({file, 0, "io-error", "cannot read file"});
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    auto file_findings = lint_source(file, buf.str());
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

// ---------------------------------------------------------------------------
// Architecture analysis.

namespace {

const std::string_view kConsumerRoots[] = {"tools", "bench", "tests",
                                           "examples"};

/// `#include "…"` targets with 1-based line numbers. The directive is
/// matched against the *stripped* code so commented-out includes never
/// count, but the target text is read back from the raw content at the
/// same columns — the stripper preserves alignment and blanks string
/// literal contents, including the include path itself.
std::vector<std::pair<std::size_t, std::string>> scan_includes(
    std::string_view raw, std::string_view stripped) {
  std::vector<std::pair<std::size_t, std::string>> out;
  std::istringstream stripped_lines{std::string(stripped)};
  std::istringstream raw_lines{std::string(raw)};
  std::string line_buf;
  std::string raw_buf;
  for (std::size_t l = 1; std::getline(stripped_lines, line_buf) &&
                          std::getline(raw_lines, raw_buf);
       ++l) {
    const std::string_view line = line_buf;
    const std::size_t hash = skip_ws(line, 0);
    if (hash >= line.size() || line[hash] != '#') continue;
    std::size_t p = skip_ws(line, hash + 1);
    if (line.compare(p, 7, "include") != 0) continue;
    p = skip_ws(line, p + 7);
    if (p >= line.size() || line[p] != '"') continue;
    const std::size_t close = line.find('"', p + 1);
    if (close == std::string_view::npos || close > raw_buf.size()) continue;
    out.emplace_back(l, raw_buf.substr(p + 1, close - p - 1));
  }
  return out;
}

/// Parses `add_library(mmog_<x> …)` and `target_link_libraries(mmog_<x> …
/// mmog_<y> …)` out of one CMakeLists.txt. Target names map to modules by
/// stripping the mmog_ prefix.
void parse_cmake_links(std::string_view cmake, const std::string& module,
                       std::map<std::string, std::set<std::string>>* deps) {
  static constexpr std::string_view kCall = "target_link_libraries";
  for (std::size_t at = cmake.find(kCall); at != std::string_view::npos;
       at = cmake.find(kCall, at + 1)) {
    const std::size_t open = cmake.find('(', at + kCall.size());
    if (open == std::string_view::npos) continue;
    const std::size_t close = cmake.find(')', open);
    if (close == std::string_view::npos) continue;
    const std::string_view args = cmake.substr(open + 1, close - open - 1);
    // Tokenize on whitespace; the first token is the target, the rest are
    // visibility keywords and dependency targets.
    std::vector<std::string> tokens;
    std::string token;
    for (const char c : args) {
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        if (!token.empty()) tokens.push_back(std::move(token));
        token.clear();
      } else {
        token += c;
      }
    }
    if (!token.empty()) tokens.push_back(std::move(token));
    if (tokens.empty()) continue;
    if (tokens[0].rfind("mmog_", 0) != 0) continue;
    const std::string target_module = tokens[0].substr(5);
    if (target_module != module) continue;
    for (std::size_t k = 1; k < tokens.size(); ++k) {
      if (tokens[k].rfind("mmog_", 0) == 0) {
        (*deps)[module].insert(tokens[k].substr(5));
      }
    }
  }
}

std::string join_path(const std::string& root, std::string_view rel) {
  if (root.empty() || root == ".") return std::string(rel);
  return root + "/" + std::string(rel);
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

}  // namespace

ArchitectureGraph build_architecture_graph(const std::string& repo_root) {
  namespace fs = std::filesystem;
  ArchitectureGraph graph;
  std::error_code ec;

  // Modules = directories under src/ (each builds one mmog_<name> target).
  const std::string src_root = join_path(repo_root, "src");
  for (fs::directory_iterator it(src_root, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->is_directory()) {
      graph.src_modules.push_back(it->path().filename().string());
    }
  }
  std::sort(graph.src_modules.begin(), graph.src_modules.end());

  // Layer DAG: direct deps from each module's target_link_libraries.
  for (const auto& module : graph.src_modules) {
    graph.link_deps[module];  // present even when leaf (util)
    std::string cmake;
    if (read_file(src_root + "/" + module + "/CMakeLists.txt", &cmake)) {
      parse_cmake_links(strip_code(cmake), module, &graph.link_deps);
    }
  }
  // Transitive closure plus self: the set of modules `m` may include.
  for (const auto& module : graph.src_modules) {
    std::set<std::string>& closure = graph.allowed[module];
    std::vector<std::string> frontier{module};
    while (!frontier.empty()) {
      const std::string at = std::move(frontier.back());
      frontier.pop_back();
      if (!closure.insert(at).second) continue;
      const auto it = graph.link_deps.find(at);
      if (it == graph.link_deps.end()) continue;
      for (const auto& dep : it->second) frontier.push_back(dep);
    }
  }

  const std::set<std::string> known(graph.src_modules.begin(),
                                    graph.src_modules.end());

  // Observed include edges across every scanned root.
  auto scan_root = [&](const std::string& rel_root,
                       const std::string& module_hint) {
    const std::string abs_root = join_path(repo_root, rel_root);
    std::error_code walk_ec;
    if (!fs::is_directory(abs_root, walk_ec)) return;
    std::vector<std::string> files;
    for (fs::recursive_directory_iterator it(abs_root, walk_ec), end;
         it != end; it.increment(walk_ec)) {
      if (walk_ec || !it->is_regular_file()) continue;
      const auto ext = it->path().extension().string();
      if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc") {
        files.push_back(it->path().generic_string());
      }
    }
    std::sort(files.begin(), files.end());
    for (const auto& abs_file : files) {
      // Repo-relative path for reporting.
      std::string rel_file = abs_file;
      const std::string prefix = join_path(repo_root, "");
      if (repo_root != "." && !repo_root.empty() &&
          rel_file.rfind(repo_root + "/", 0) == 0) {
        rel_file = rel_file.substr(repo_root.size() + 1);
      }
      std::string from = module_hint;
      if (from.empty()) {
        // src/<module>/…
        const std::size_t slash = rel_file.find('/', 4);
        from = slash == std::string::npos
                   ? std::string("src")
                   : rel_file.substr(4, slash - 4);
      }
      std::string content;
      if (!read_file(abs_file, &content)) {
        graph.io_errors.push_back({rel_file, 0, "io-error",
                                   "cannot read file"});
        continue;
      }
      for (const auto& [line, target] :
           scan_includes(content, strip_code(content))) {
        const std::size_t slash = target.find('/');
        std::string to = slash == std::string::npos
                             ? from  // relative include: same module
                             : target.substr(0, slash);
        if (known.count(to) == 0) to = from;  // not a module header
        if (to == from) continue;
        graph.sites.push_back({from, to, rel_file, line});
      }
    }
  };
  scan_root("src", "");
  for (const std::string_view consumer : kConsumerRoots) {
    scan_root(std::string(consumer), std::string(consumer));
  }
  std::sort(graph.sites.begin(), graph.sites.end(),
            [](const IncludeSite& a, const IncludeSite& b) {
              return std::tie(a.from_module, a.to_module, a.file, a.line) <
                     std::tie(b.from_module, b.to_module, b.file, b.line);
            });
  return graph;
}

std::vector<Finding> lint_architecture(const ArchitectureGraph& graph) {
  std::vector<Finding> findings;
  const std::set<std::string> src_modules(graph.src_modules.begin(),
                                          graph.src_modules.end());

  // Module-level adjacency from the observed include sites (src only).
  std::map<std::string, std::set<std::string>> adj;
  for (const auto& site : graph.sites) {
    if (src_modules.count(site.from_module) > 0 &&
        src_modules.count(site.to_module) > 0) {
      adj[site.from_module].insert(site.to_module);
    }
  }

  // include-cycle: any module reachable from itself through include edges.
  // The cycle is reported once per offending module pairlist, anchored at
  // the first include site that participates.
  std::set<std::string> in_reported_cycle;
  for (const auto& module : graph.src_modules) {
    if (in_reported_cycle.count(module) > 0) continue;
    // DFS from `module`; a path back to it is a cycle.
    std::vector<std::string> stack{module};
    std::set<std::string> visited;
    std::map<std::string, std::string> parent;
    bool cyclic = false;
    std::string last;
    while (!stack.empty() && !cyclic) {
      const std::string at = std::move(stack.back());
      stack.pop_back();
      if (!visited.insert(at).second) continue;
      const auto it = adj.find(at);
      if (it == adj.end()) continue;
      for (const auto& next : it->second) {
        if (next == module) {
          cyclic = true;
          last = at;
          break;
        }
        if (visited.count(next) == 0) {
          parent[next] = at;
          stack.push_back(next);
        }
      }
    }
    if (!cyclic) continue;
    // Reconstruct module -> … -> last -> module.
    std::vector<std::string> cycle{module};
    for (std::string at = last; at != module; at = parent[at]) {
      cycle.insert(cycle.begin() + 1, at);
    }
    cycle.push_back(module);
    std::string path_text;
    for (std::size_t k = 0; k < cycle.size(); ++k) {
      if (k > 0) path_text += " -> ";
      path_text += cycle[k];
      in_reported_cycle.insert(cycle[k]);
    }
    // Anchor at the first edge of the cycle.
    for (const auto& site : graph.sites) {
      if (site.from_module == cycle[0] && site.to_module == cycle[1]) {
        findings.push_back({site.file, site.line, "include-cycle",
                            "include cycle among src modules: " + path_text});
        break;
      }
    }
  }

  // layer-violation: a src→src include edge the link-graph closure forbids.
  for (const auto& site : graph.sites) {
    if (src_modules.count(site.from_module) == 0 ||
        src_modules.count(site.to_module) == 0) {
      continue;  // consumer roots may include any module
    }
    const auto it = graph.allowed.find(site.from_module);
    if (it != graph.allowed.end() && it->second.count(site.to_module) > 0) {
      continue;
    }
    std::string allowed_text;
    if (it != graph.allowed.end()) {
      for (const auto& dep : it->second) {
        if (dep == site.from_module) continue;
        if (!allowed_text.empty()) allowed_text += ", ";
        allowed_text += dep;
      }
    }
    if (allowed_text.empty()) allowed_text = "nothing";
    findings.push_back(
        {site.file, site.line, "layer-violation",
         "module '" + site.from_module + "' must not include '" +
             site.to_module + "': the CMake link graph allows only " +
             allowed_text});
  }

  findings.insert(findings.end(), graph.io_errors.begin(),
                  graph.io_errors.end());
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.path, a.line, a.rule) <
                     std::tie(b.path, b.line, b.rule);
            });
  return findings;
}

std::string to_dot(const ArchitectureGraph& graph) {
  const std::set<std::string> src_modules(graph.src_modules.begin(),
                                          graph.src_modules.end());
  // Edge multiplicity and violation flags.
  std::map<std::pair<std::string, std::string>, std::size_t> counts;
  for (const auto& site : graph.sites) {
    ++counts[{site.from_module, site.to_module}];
  }
  std::string dot;
  dot += "digraph mmog_modules {\n";
  dot += "  rankdir=BT;\n";
  dot += "  node [shape=box, fontname=\"Helvetica\"];\n";
  for (const auto& module : graph.src_modules) {
    dot += "  \"" + module + "\";\n";
  }
  std::set<std::string> consumers;
  for (const auto& site : graph.sites) {
    if (src_modules.count(site.from_module) == 0) {
      consumers.insert(site.from_module);
    }
  }
  for (const auto& consumer : consumers) {
    dot += "  \"" + consumer + "\" [style=dashed];\n";
  }
  for (const auto& [edge, count] : counts) {
    const auto& [from, to] = edge;
    bool violation = false;
    if (src_modules.count(from) > 0 && src_modules.count(to) > 0) {
      const auto it = graph.allowed.find(from);
      violation = it == graph.allowed.end() || it->second.count(to) == 0;
    }
    dot += "  \"" + from + "\" -> \"" + to + "\" [label=\"" +
           std::to_string(count) + "\"";
    if (violation) dot += ", color=red, penwidth=2";
    dot += "];\n";
  }
  dot += "}\n";
  return dot;
}

// ---------------------------------------------------------------------------
// Whole-repository run and output formats.

RepoLintResult lint_repo(const std::string& repo_root) {
  RepoLintResult result;
  const std::string prefix =
      repo_root == "." || repo_root.empty() ? "" : repo_root + "/";
  auto add_tree = [&](std::string_view rel_root) {
    const std::string root = prefix.empty() ? std::string(rel_root)
                                            : prefix + std::string(rel_root);
    std::error_code ec;
    if (!std::filesystem::is_directory(root, ec)) return;  // optional root
    auto part = lint_tree(root);
    for (auto& finding : part) {
      if (!prefix.empty() && finding.path.rfind(prefix, 0) == 0) {
        finding.path = finding.path.substr(prefix.size());
      }
      result.findings.push_back(std::move(finding));
    }
  };
  add_tree("src");
  for (const std::string_view consumer : kConsumerRoots) {
    add_tree(consumer);
  }
  result.graph = build_architecture_graph(repo_root);
  auto arch = lint_architecture(result.graph);
  result.findings.insert(result.findings.end(),
                         std::make_move_iterator(arch.begin()),
                         std::make_move_iterator(arch.end()));
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.path, a.line, a.rule, a.message) <
                     std::tie(b.path, b.line, b.rule, b.message);
            });
  return result;
}

namespace {

/// Minimal JSON string escaper (finding text is ASCII; control characters
/// escape as \uXXXX so the output always parses).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  static constexpr char kHex[] = "0123456789abcdef";
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (u < 0x20) {
          out += "\\u00";
          out += kHex[(u >> 4) & 0xF];
          out += kHex[u & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string findings_to_json(const std::vector<Finding>& findings) {
  std::string out;
  out += "{\"schema\":1,\"kind\":\"mmog-lint\",\"findings\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const auto& f = findings[i];
    if (i > 0) out += ",";
    out += "{\"path\":\"" + json_escape(f.path) + "\"";
    out += ",\"line\":" + std::to_string(f.line);
    out += ",\"rule\":\"" + json_escape(f.rule) + "\"";
    out += ",\"message\":\"" + json_escape(f.message) + "\"}";
  }
  out += "],\"count\":" + std::to_string(findings.size()) + "}\n";
  return out;
}

std::string findings_to_sarif(const std::vector<Finding>& findings) {
  std::string out;
  out += "{\"$schema\":"
         "\"https://json.schemastore.org/sarif-2.1.0.json\","
         "\"version\":\"2.1.0\",\"runs\":[{";
  out += "\"tool\":{\"driver\":{\"name\":\"mmog_lint\","
         "\"informationUri\":"
         "\"https://github.com/mmogdc/mmogdc\","
         "\"version\":\"2.0.0\",\"rules\":[";
  bool first = true;
  for (const auto& rule : rule_catalog()) {
    if (!first) out += ",";
    first = false;
    out += "{\"id\":\"" + json_escape(rule.name) + "\"";
    out += ",\"shortDescription\":{\"text\":\"" + json_escape(rule.summary) +
           "\"}";
    out += ",\"properties\":{\"scope\":\"" +
           json_escape(scope_label(rule.scope)) + "\"}}";
  }
  out += ",{\"id\":\"io-error\",\"shortDescription\":{\"text\":\"file could "
         "not be read while linting\"}}";
  out += "]}},\"results\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const auto& f = findings[i];
    if (i > 0) out += ",";
    out += "{\"ruleId\":\"" + json_escape(f.rule) + "\"";
    out += ",\"level\":\"error\"";
    out += ",\"message\":{\"text\":\"" + json_escape(f.message) + "\"}";
    out += ",\"locations\":[{\"physicalLocation\":{"
           "\"artifactLocation\":{\"uri\":\"" +
           json_escape(f.path) + "\"},\"region\":{\"startLine\":" +
           std::to_string(f.line == 0 ? 1 : f.line) + "}}}]}";
  }
  out += "]}]}\n";
  return out;
}

}  // namespace mmog::util::lint
