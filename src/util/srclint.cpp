#include "util/srclint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace mmog::util::lint {
namespace {

bool is_word(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Result of the comment/string stripper: `code` mirrors the input byte for
/// byte except that comment bodies and string/char literal contents become
/// spaces (newlines survive, so line numbers line up); `comment_text[i]` is
/// the concatenated comment text that *starts* on 1-based line i+1; and
/// `line_has_code[i]` says whether that line kept any non-whitespace code.
struct Stripped {
  std::string code;
  std::vector<std::string> comment_text;
  std::vector<bool> line_has_code;
};

Stripped strip(std::string_view in) {
  Stripped out;
  out.code.reserve(in.size());
  std::size_t line = 0;  // 0-based index of the current line
  auto ensure_line = [&](std::size_t l) {
    if (out.comment_text.size() <= l) {
      out.comment_text.resize(l + 1);
      out.line_has_code.resize(l + 1, false);
    }
  };
  ensure_line(0);

  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  std::size_t comment_line = 0;  // line the active comment started on
  std::string raw_delim;         // for R"delim( ... )delim"

  std::size_t i = 0;
  const auto n = in.size();
  auto emit = [&](char c) {
    out.code += c;
    if (!std::isspace(static_cast<unsigned char>(c))) {
      out.line_has_code[line] = true;
    }
  };
  auto blank = [&](char c) { out.code += c == '\n' ? '\n' : ' '; };

  while (i < n) {
    const char c = in[i];
    if (c == '\n') {
      ++line;
      ensure_line(line);
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && i + 1 < n && in[i + 1] == '/') {
          state = State::kLine;
          comment_line = line;
          blank(c);
          blank(in[++i]);
        } else if (c == '/' && i + 1 < n && in[i + 1] == '*') {
          state = State::kBlock;
          comment_line = line;
          blank(c);
          blank(in[++i]);
        } else if (c == '"' && i > 0 && in[i - 1] == 'R') {
          // Raw string literal: R"delim( ... )delim"
          state = State::kRaw;
          raw_delim.clear();
          emit(c);
          while (i + 1 < n && in[i + 1] != '(') raw_delim += in[++i];
          if (i + 1 < n) ++i;  // consume '('
        } else if (c == '"') {
          state = State::kString;
          emit(c);
        } else if (c == '\'' && (i == 0 || !is_word(in[i - 1]))) {
          // A char literal, not a C++14 digit separator (1'000'000).
          state = State::kChar;
          emit(c);
        } else {
          emit(c);
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
          blank(c);
        } else {
          out.comment_text[comment_line] += c;
          blank(c);
        }
        break;
      case State::kBlock:
        if (c == '*' && i + 1 < n && in[i + 1] == '/') {
          state = State::kCode;
          blank(c);
          blank(in[++i]);
        } else {
          out.comment_text[comment_line] += c;
          blank(c);
        }
        break;
      case State::kString:
        if (c == '\\' && i + 1 < n) {
          blank(c);
          blank(in[++i]);
        } else if (c == '"') {
          state = State::kCode;
          emit(c);
        } else {
          blank(c);
        }
        break;
      case State::kChar:
        if (c == '\\' && i + 1 < n) {
          blank(c);
          blank(in[++i]);
        } else if (c == '\'') {
          state = State::kCode;
          emit(c);
        } else {
          blank(c);
        }
        break;
      case State::kRaw:
        if (c == ')' && in.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
            i + 1 + raw_delim.size() < n && in[i + 1 + raw_delim.size()] == '"') {
          for (std::size_t k = 0; k < raw_delim.size() + 1; ++k) blank(in[i + k]);
          i += raw_delim.size() + 1;
          emit('"');
          state = State::kCode;
        } else {
          blank(c);
        }
        break;
    }
    ++i;
  }
  return out;
}

/// First position >= from where `name` appears as a whole word; npos if none.
std::size_t find_token(std::string_view line, std::string_view name,
                       std::size_t from = 0) {
  for (std::size_t pos = line.find(name, from); pos != std::string_view::npos;
       pos = line.find(name, pos + 1)) {
    const bool left_ok = pos == 0 || !is_word(line[pos - 1]);
    const std::size_t end = pos + name.size();
    const bool right_ok = end >= line.size() || !is_word(line[end]);
    if (left_ok && right_ok) return pos;
  }
  return std::string_view::npos;
}

std::size_t skip_ws(std::string_view s, std::size_t pos) {
  while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t')) ++pos;
  return pos;
}

/// True when `name` appears as a word immediately followed by '(' — i.e. a
/// call (or declaration, which is equally banned for the banned names).
bool has_call(std::string_view line, std::string_view name) {
  for (std::size_t pos = find_token(line, name); pos != std::string_view::npos;
       pos = find_token(line, name, pos + 1)) {
    const std::size_t after = skip_ws(line, pos + name.size());
    if (after < line.size() && line[after] == '(') return true;
  }
  return false;
}

/// True when `name` (an RNG engine or .seed) is invoked with a bare integer
/// literal argument: `seed(0xabc)`, or the declaration forms
/// `util::Rng rng(42)` / `std::mt19937 gen{12345}` — one intervening
/// identifier (the variable name) is skipped between the engine and the
/// argument list.
bool has_literal_seed(std::string_view line, std::string_view name) {
  for (std::size_t pos = find_token(line, name); pos != std::string_view::npos;
       pos = find_token(line, name, pos + 1)) {
    std::size_t p = skip_ws(line, pos + name.size());
    if (p < line.size() && std::isalpha(static_cast<unsigned char>(line[p])) != 0) {
      while (p < line.size() && is_word(line[p])) ++p;  // variable name
      p = skip_ws(line, p);
    }
    if (p >= line.size() || (line[p] != '(' && line[p] != '{')) continue;
    const char close = line[p] == '(' ? ')' : '}';
    p = skip_ws(line, p + 1);
    if (p >= line.size() || std::isdigit(static_cast<unsigned char>(line[p])) == 0) {
      continue;
    }
    while (p < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[p])) != 0 ||
            line[p] == '\'')) {
      ++p;  // digits, hex letters, 0x/0b prefixes, u/l suffixes, separators
    }
    p = skip_ws(line, p);
    if (p < line.size() && line[p] == close) return true;
  }
  return false;
}

const std::string_view kDeterministicDirs[] = {"core", "dc", "predict", "nn",
                                               "emu"};

/// Parses every `mmog-lint: allow(rule[, rule...])` directive in a comment.
std::set<std::string> parse_allows(std::string_view comment) {
  std::set<std::string> rules;
  static constexpr std::string_view kKey = "mmog-lint:";
  for (std::size_t at = comment.find(kKey); at != std::string_view::npos;
       at = comment.find(kKey, at + 1)) {
    std::size_t p = skip_ws(comment, at + kKey.size());
    if (comment.compare(p, 5, "allow") != 0) continue;
    p = skip_ws(comment, p + 5);
    if (p >= comment.size() || comment[p] != '(') continue;
    const std::size_t end = comment.find(')', p);
    if (end == std::string_view::npos) continue;
    std::string name;
    for (std::size_t k = p + 1; k <= end; ++k) {
      const char c = k == end ? ',' : comment[k];
      if (c == ',' ) {
        if (!name.empty()) rules.insert(name);
        name.clear();
      } else if (!std::isspace(static_cast<unsigned char>(c))) {
        name += c;
      }
    }
  }
  return rules;
}

}  // namespace

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {"rand", false,
       "rand()/srand() use hidden global state; take a util::Rng instead"},
      {"random-device", false,
       "std::random_device draws fresh entropy every run; plumb a seed"},
      {"wall-clock", false,
       "wall-clock reads (system_clock, time(), localtime, ...) make runs "
       "time-of-day dependent; use steady_clock for measured durations"},
      {"seed-literal", false,
       "RNG seeded with a bare integer literal; seeds must come from "
       "configuration so experiments stay reproducible end to end"},
      {"unordered-container", true,
       "unordered container in a deterministic simulation path; iteration "
       "order is implementation-defined — use std::map or a sorted vector"},
  };
  return kCatalog;
}

bool is_deterministic_path(std::string_view path) {
  std::size_t begin = 0;
  while (begin <= path.size()) {
    std::size_t end = path.find('/', begin);
    if (end == std::string_view::npos) end = path.size();
    const std::string_view part = path.substr(begin, end - begin);
    for (const std::string_view dir : kDeterministicDirs) {
      if (part == dir) return true;
    }
    begin = end + 1;
  }
  return false;
}

std::vector<Finding> lint_source(std::string_view path,
                                 std::string_view content) {
  const Stripped stripped = strip(content);
  const bool deterministic = is_deterministic_path(path);

  // Allow sets per 0-based line, from that line's comments.
  std::vector<std::set<std::string>> allows(stripped.comment_text.size());
  for (std::size_t l = 0; l < stripped.comment_text.size(); ++l) {
    if (!stripped.comment_text[l].empty()) {
      allows[l] = parse_allows(stripped.comment_text[l]);
    }
  }

  std::vector<Finding> findings;
  auto allowed = [&](std::size_t l, std::string_view rule) {
    if (l < allows.size() && allows[l].count(std::string(rule)) > 0) {
      return true;
    }
    // A standalone allow comment (no code on its line) covers the next line.
    return l > 0 && l - 1 < allows.size() &&
           allows[l - 1].count(std::string(rule)) > 0 &&
           !stripped.line_has_code[l - 1];
  };
  auto report = [&](std::size_t l, std::string_view rule,
                    std::string message) {
    if (allowed(l, rule)) return;
    findings.push_back(
        {std::string(path), l + 1, std::string(rule), std::move(message)});
  };

  std::istringstream lines{stripped.code};
  std::string raw_line;
  for (std::size_t l = 0; std::getline(lines, raw_line); ++l) {
    const std::string_view line = raw_line;

    if (has_call(line, "rand") || has_call(line, "srand")) {
      report(l, "rand", "rand()/srand() banned: use util::Rng with a "
                        "plumbed seed");
    }
    if (line.find("random_device") != std::string_view::npos) {
      report(l, "random-device",
             "std::random_device banned: nondeterministic across runs");
    }
    if (line.find("system_clock") != std::string_view::npos ||
        has_call(line, "time") || has_call(line, "gettimeofday") ||
        has_call(line, "localtime") || has_call(line, "gmtime") ||
        has_call(line, "ctime") || has_call(line, "asctime")) {
      report(l, "wall-clock",
             "wall-clock read banned: simulation output must not depend on "
             "time of day (steady_clock is fine for measured durations)");
    }
    for (const std::string_view engine :
         {std::string_view("Rng"), std::string_view("mt19937"),
          std::string_view("mt19937_64"),
          std::string_view("default_random_engine"),
          std::string_view("minstd_rand"), std::string_view("minstd_rand0"),
          std::string_view("seed")}) {
      if (has_literal_seed(line, engine)) {
        report(l, "seed-literal",
               "RNG seeded with an integer literal: plumb the seed from "
               "configuration instead of inventing it here");
        break;
      }
    }
    if (deterministic &&
        (line.find("unordered_map") != std::string_view::npos ||
         line.find("unordered_set") != std::string_view::npos ||
         line.find("unordered_multi") != std::string_view::npos)) {
      report(l, "unordered-container",
             "unordered container in a deterministic path: iteration order "
             "is implementation-defined — use std::map or a sorted vector");
    }
  }
  return findings;
}

std::vector<Finding> lint_tree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  const auto wanted = [](const fs::path& p) {
    const auto ext = p.extension().string();
    return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
  };
  std::error_code ec;
  if (fs::is_directory(root, ec)) {
    for (fs::recursive_directory_iterator it(root, ec), end; it != end;
         it.increment(ec)) {
      if (!ec && it->is_regular_file() && wanted(it->path())) {
        files.push_back(it->path().generic_string());
      }
    }
  } else {
    files.push_back(root);
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      findings.push_back({file, 0, "io-error", "cannot read file"});
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    auto file_findings = lint_source(file, buf.str());
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

}  // namespace mmog::util::lint
