#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace mmog::util {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("AtomicFileWriter: " + what + " " + path + ": " +
                           std::strerror(errno));
}

/// Writes the whole buffer to an fd, retrying on short writes / EINTR.
void write_all(int fd, std::string_view content, const std::string& path) {
  const char* data = content.data();
  std::size_t left = content.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      fail("cannot write", path);
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
}

/// Best-effort fsync of the directory containing `path`, so the rename
/// itself is durable across power loss (not just process crash).
void sync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)) {
  if (path_.empty()) {
    throw std::invalid_argument("AtomicFileWriter: empty path");
  }
}

void AtomicFileWriter::commit(bool keep_previous) {
  if (committed_) {
    throw std::logic_error("AtomicFileWriter: already committed " + path_);
  }
  const std::string tmp = path_ + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("cannot open", tmp);
  const std::string content = buf_.str();
  write_all(fd, content, tmp);
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    fail("cannot fsync", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail("cannot close", tmp);
  }
  if (keep_previous) {
    // Displace the live generation to "<path>.prev"; a missing target just
    // means this is the first commit.
    if (::rename(path_.c_str(), (path_ + ".prev").c_str()) != 0 &&
        errno != ENOENT) {
      ::unlink(tmp.c_str());
      fail("cannot retire previous generation of", path_);
    }
  }
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail("cannot publish", path_);
  }
  sync_parent_dir(path_);
  committed_ = true;
}

void write_file_atomic(const std::string& path, std::string_view content,
                       bool keep_previous) {
  AtomicFileWriter writer(path);
  writer.stream() << content;
  writer.commit(keep_previous);
}

}  // namespace mmog::util
