#pragma once

#include <cstddef>
#include <cstdint>

namespace mmog::util::alloccount {

/// Heap-allocation totals accumulated by the global `operator new/delete`
/// hooks (see alloccount.cpp), summed over every thread that allocated
/// since counting was armed. Monotonic counters: attribute work to a code
/// region by differencing two totals() snapshots around it.
struct Totals {
  std::uint64_t allocs = 0;  ///< operator new calls observed
  std::uint64_t frees = 0;   ///< operator delete calls observed
  std::uint64_t bytes = 0;   ///< sum of requested allocation sizes

  friend Totals operator-(const Totals& a, const Totals& b) noexcept {
    return {a.allocs - b.allocs, a.frees - b.frees, a.bytes - b.bytes};
  }
};

/// True while at least one Scope (or unbalanced arm()) is live. When false
/// — the default — the hooks cost one relaxed atomic load per allocation
/// and touch nothing else, so unprofiled runs keep their exact behavior.
bool enabled() noexcept;

/// Arms/disarms counting (reference counted, so nested scopes compose).
/// Counters are never reset: totals() keeps growing across scopes.
void arm() noexcept;
void disarm() noexcept;

/// Current global totals (all threads, relaxed reads; exact once the
/// counted threads have quiesced, e.g. after a phase barrier).
Totals totals() noexcept;

/// RAII arming: counting is enabled for the object's lifetime.
class Scope {
 public:
  Scope() noexcept { arm(); }
  ~Scope() { disarm(); }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;
};

}  // namespace mmog::util::alloccount
