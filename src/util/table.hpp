#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mmog::util {

/// Plain-text table builder used by the benchmark harnesses to print
/// paper-style rows. Columns are right-aligned except the first, which is
/// left-aligned (row label).
class TextTable {
 public:
  /// Starts a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends one row; missing cells are rendered empty, extra cells dropped.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats a double with `precision` decimals.
  static std::string num(double v, int precision = 2);

  /// Renders the table with a header separator line.
  std::string to_string() const;

  /// Renders as CSV (no alignment, comma-separated, quoted when needed).
  std::string to_csv() const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const TextTable& t);

}  // namespace mmog::util
