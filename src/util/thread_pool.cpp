#include "util/thread_pool.hpp"

#include <algorithm>

namespace mmog::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) cv_.wait(mutex_);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers = std::min(n, pool.thread_count());
  const std::size_t chunk = (n + workers - 1) / workers;
  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    futures.push_back(pool.submit([begin, end, &fn] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  parallel_for(shared_pool(), n, fn);
}

ThreadPool& shared_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace mmog::util
