#pragma once

// Clang Thread Safety Analysis attribute macros (the canonical mock-header
// vocabulary: CAPABILITY / GUARDED_BY / REQUIRES / ACQUIRE / RELEASE, see
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). On compilers
// without the attributes (GCC, MSVC) every macro expands to nothing, so the
// annotations are free documentation there and compile-time race proofs
// under `clang -Wthread-safety` (promoted to errors by MMOG_WERROR).
//
// Annotate with these via util::Mutex / util::MutexLock (util/mutex.hpp);
// a bare std::mutex is invisible to the analysis.

#if defined(__clang__) && (!defined(SWIG))
#define MMOG_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define MMOG_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

#ifndef CAPABILITY
#define CAPABILITY(x) MMOG_THREAD_ANNOTATION_ATTRIBUTE(capability(x))
#endif

#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY MMOG_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)
#endif

#ifndef GUARDED_BY
#define GUARDED_BY(x) MMOG_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))
#endif

#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) MMOG_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))
#endif

#ifndef ACQUIRED_BEFORE
#define ACQUIRED_BEFORE(...) \
  MMOG_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#endif

#ifndef ACQUIRED_AFTER
#define ACQUIRED_AFTER(...) \
  MMOG_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))
#endif

#ifndef REQUIRES
#define REQUIRES(...) \
  MMOG_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#endif

#ifndef REQUIRES_SHARED
#define REQUIRES_SHARED(...) \
  MMOG_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))
#endif

#ifndef ACQUIRE
#define ACQUIRE(...) \
  MMOG_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#endif

#ifndef ACQUIRE_SHARED
#define ACQUIRE_SHARED(...) \
  MMOG_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#endif

#ifndef RELEASE
#define RELEASE(...) \
  MMOG_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#endif

#ifndef RELEASE_SHARED
#define RELEASE_SHARED(...) \
  MMOG_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
#endif

#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) \
  MMOG_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#endif

#ifndef EXCLUDES
#define EXCLUDES(...) MMOG_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))
#endif

#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) \
  MMOG_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))
#endif

#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) \
  MMOG_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))
#endif

#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS \
  MMOG_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
#endif
