#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mmog::util {

/// Descriptive summary of a sample: count, extremes, moments and quartiles.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  double median = 0.0;
  double q1 = 0.0;  ///< first quartile (25th percentile)
  double q3 = 0.0;  ///< third quartile (75th percentile)

  /// Interquartile range q3 - q1.
  double iqr() const noexcept { return q3 - q1; }
};

/// Computes the full summary of `xs`. Returns a zeroed summary when empty.
Summary summarize(std::span<const double> xs);

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs) noexcept;

/// Population variance; 0 for spans shorter than 1.
double variance(std::span<const double> xs) noexcept;

/// Linear-interpolation quantile, q in [0,1]. Throws std::invalid_argument
/// for an empty span or q outside [0,1].
double quantile(std::span<const double> xs, double q);

/// Median (quantile 0.5).
double median(std::span<const double> xs);

/// Interquartile range (q3 - q1).
double interquartile_range(std::span<const double> xs);

/// Sample autocorrelation function up to `max_lag` (inclusive); result[0] is
/// always 1 for a non-constant series. A constant series yields all-zero
/// coefficients beyond lag 0 (its ACF is undefined; zero is a safe sentinel).
std::vector<double> autocorrelation(std::span<const double> xs,
                                    std::size_t max_lag);

/// One point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;
  double fraction = 0.0;  ///< P(X <= value), in [0,1]
};

/// Empirical CDF of `xs`, one point per distinct value.
std::vector<CdfPoint> empirical_cdf(std::span<const double> xs);

/// Evaluates an empirical CDF at `value` (fraction of samples <= value).
double cdf_at(std::span<const CdfPoint> cdf, double value) noexcept;

/// Fixed-width histogram over [lo, hi) with `bins` buckets; values outside
/// the range are clamped into the first/last bucket.
std::vector<std::size_t> histogram(std::span<const double> xs, double lo,
                                   double hi, std::size_t bins);

/// Pearson correlation coefficient of two equal-length series; 0 when either
/// is constant or the spans are empty/mismatched.
double pearson(std::span<const double> xs, std::span<const double> ys) noexcept;

}  // namespace mmog::util
