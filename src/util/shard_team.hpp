#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace mmog::util {

/// A persistent fork-join worker team for per-step sharded phases. Unlike
/// ThreadPool::submit (which heap-allocates a packaged task per call),
/// run() dispatches one raw function pointer + context to every worker and
/// joins them without a single allocation — exactly what the hot simulation
/// phases need to stay allocation-free under the bench allocs/step gate.
///
/// Determinism contract: run(task, ctx) invokes task(ctx, shard, shards)
/// once for every shard in [0, threads()), each on its own thread (shard 0
/// on the calling thread), and returns only after all shards finished. The
/// caller partitions its work so shards write pairwise disjoint slots; the
/// join is the barrier that makes every write visible before the serial
/// commit reads it. Which thread runs a shard never influences results.
///
/// run() is externally synchronized: one caller at a time (the simulation
/// loop). A shard's exception is captured and rethrown from run() on the
/// calling thread (first one wins); the remaining shards still complete, so
/// the team stays reusable afterwards.
class ShardTeam {
 public:
  /// The task signature: process shard `shard` of `shards` total.
  using Task = void (*)(void* ctx, std::size_t shard, std::size_t shards);

  /// Spawns `threads - 1` workers (shard 0 runs on the caller). `threads`
  /// is clamped to at least 1; threads == 1 means run() simply calls the
  /// task inline with no synchronization at all.
  explicit ShardTeam(std::size_t threads);
  ~ShardTeam();

  ShardTeam(const ShardTeam&) = delete;
  ShardTeam& operator=(const ShardTeam&) = delete;

  std::size_t threads() const noexcept { return threads_; }

  /// Runs task(ctx, s, threads()) for every shard s and joins.
  void run(Task task, void* ctx);

 private:
  void worker_loop(std::size_t shard);

  std::size_t threads_ = 1;
  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar work_ready_;
  CondVar work_done_;
  std::uint64_t epoch_ GUARDED_BY(mutex_) = 0;
  Task task_ GUARDED_BY(mutex_) = nullptr;
  void* ctx_ GUARDED_BY(mutex_) = nullptr;
  std::size_t remaining_ GUARDED_BY(mutex_) = 0;
  bool stopping_ GUARDED_BY(mutex_) = false;
  std::exception_ptr first_error_ GUARDED_BY(mutex_);
};

}  // namespace mmog::util
