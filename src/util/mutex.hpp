#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace mmog::util {

/// std::mutex wrapped as a Clang Thread Safety Analysis *capability*, so
/// members annotated GUARDED_BY(mutex_) are proven locked at compile time.
/// Zero-cost: every method forwards to the underlying std::mutex.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { m_.lock(); }
  void unlock() RELEASE() { m_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

/// RAII lock for util::Mutex, annotated as a scoped capability (the
/// std::lock_guard of this codebase). Not movable; lives on the stack for
/// exactly the critical section.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable paired with util::Mutex. wait() REQUIRES the mutex so
/// the analysis can check the caller holds it across the wait; the mutex is
/// re-held when wait returns (std::condition_variable semantics).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mutex) REQUIRES(mutex) {
    std::unique_lock<std::mutex> adopted(mutex.m_, std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();  // ownership stays with the caller's MutexLock
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mmog::util
