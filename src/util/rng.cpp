#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace mmog::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (hi <= lo) return lo;
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  // Modulo bias is negligible for the ranges used here (<< 2^64).
  return lo + static_cast<std::int64_t>((*this)() % range);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double lambda) noexcept {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean > 60.0) {
    const double v = normal(mean, std::sqrt(mean));
    return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  std::uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= uniform();
  } while (p > limit);
  return k - 1;
}

std::size_t Rng::weighted_choice(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) total += w > 0.0 ? w : 0.0;
  if (weights.empty() || total <= 0.0) {
    throw std::invalid_argument("weighted_choice: empty or non-positive weights");
  }
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (r < w) return i;
    r -= w;
  }
  return weights.size() - 1;
}

Rng Rng::fork() noexcept { return Rng((*this)()); }

}  // namespace mmog::util
